#include "router/vc_network.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "obs/report.hpp"
#include "util/logging.hpp"

namespace turnmodel {

VcNetwork::VcNetwork(const RoutingAlgorithm &routing,
                     const TrafficPattern &pattern,
                     const SimConfig &config)
    : routing_(routing), decider_(&routing), topo_(routing.topology()),
      pattern_(pattern), config_(config),
      ideal_(config.vc_router.ideal_credits),
      pipelined_(config.vc_router.pipelined),
      credit_delay_(config.vc_router.credit_delay),
      sa_arbiter_(config.vc_router.arbiter),
      router_rng_(Rng::forStream(config.seed, 0xabcdef))
{
    TM_ASSERT(config_.buffer_depth >= 1, "buffers hold at least one flit");
    TM_ASSERT(config_.switching == Switching::Wormhole,
              "the VC router models wormhole switching only");
    TM_ASSERT(credit_delay_ >= 1,
              "credit return takes at least one cycle");
    if (config_.compiled_routing &&
        dynamic_cast<const CompiledRoutingTable *>(&routing) == nullptr) {
        compiled_.emplace(routing);
        decider_ = &*compiled_;
    }
    ports_per_router_ = topo_.numDirs() + 1;
    buffer_depth_ = config_.buffer_depth;
    const std::size_t total_ports =
        static_cast<std::size_t>(topo_.numNodes()) *
        static_cast<std::size_t>(ports_per_router_);
    in_ports_.resize(total_ports);
    out_ports_.resize(total_ports);
    flit_slab_.resize(total_ports * buffer_depth_);
    out_to_in_.assign(total_ports, -1);
    in_to_out_.assign(total_ports, -1);
    is_active_.assign(total_ports, 0);
    head_waiting_.assign(total_ports, 0);
    waiting_pos_.assign(total_ports, 0);
    granted_.assign(total_ports, 0);
    granted_out_port_.assign(total_ports, 0);
    granted_target_.assign(total_ports, -1);
    maybe_free_.assign(total_ports, 0);
    arb_move_into_.assign(total_ports, -1);
    va_ready_at_.assign(total_ports, 0);
    sa_ready_at_.assign(total_ports, 0);
    credits_.assign(total_ports,
                    static_cast<std::int64_t>(buffer_depth_));
    credit_stall_.assign(total_ports, 0);

    port_router_.resize(total_ports);
    port_local_.resize(total_ports);
    for (std::uint32_t p = 0; p < total_ports; ++p) {
        port_router_[p] =
            p / static_cast<std::uint32_t>(ports_per_router_);
        port_local_[p] = static_cast<std::uint8_t>(
            p % static_cast<std::uint32_t>(ports_per_router_));
    }

    // Wire each output VC to the matching downstream input VC, and
    // remember the inverse for credit returns: popping a flit from an
    // input buffer sends a credit to the upstream output VC.
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        for (Direction d : allDirections(topo_.numDims())) {
            const auto w = topo_.neighbor(v, d);
            if (!w)
                continue;
            const std::uint32_t out = inPortId(v, d.id());
            const std::uint32_t in = inPortId(*w, d.id());
            out_to_in_[out] = static_cast<std::int32_t>(in);
            in_to_out_[in] = static_cast<std::int32_t>(out);
        }
    }

    // Crossbar resources: virtual channels of one physical wire share
    // one crossbar input (arriving side) and one output wire
    // (departing side); the local injection/ejection port is its own
    // resource. Identity mapping on plain topologies.
    const int num_dirs = topo_.numDirs();
    std::vector<std::uint32_t> wire_of_dir(
        static_cast<std::size_t>(num_dirs));
    std::uint32_t wires = 0;
    for (int d = 0; d < num_dirs; ++d) {
        wire_of_dir[static_cast<std::size_t>(d)] =
            topo_.physicalChannelGroup(static_cast<DirId>(d));
        wires = std::max(
            wires, wire_of_dir[static_cast<std::size_t>(d)] + 1u);
    }
    const std::uint32_t resources_per_router = wires + 1;
    in_group_.resize(total_ports);
    out_wire_.resize(total_ports);
    port_vc_.assign(total_ports, 0);
    for (std::uint32_t p = 0; p < total_ports; ++p) {
        const int local = localOf(p);
        const std::uint32_t res = local == localPort()
            ? wires
            : wire_of_dir[static_cast<std::size_t>(local)];
        const std::uint32_t id =
            routerOf(p) * resources_per_router + res;
        in_group_[p] = id;
        out_wire_[p] = id;
        if (local != localPort()) {
            std::uint8_t vc = 0;
            for (int d = 0; d < local; ++d) {
                if (wire_of_dir[static_cast<std::size_t>(d)] ==
                    wire_of_dir[static_cast<std::size_t>(local)])
                    ++vc;
            }
            port_vc_[p] = vc;
        }
    }
    const std::size_t num_resources =
        static_cast<std::size_t>(topo_.numNodes()) *
        static_cast<std::size_t>(resources_per_router);
    in_arb_.assign(num_resources, RoundRobinArbiter(
        static_cast<std::uint32_t>(total_ports)));
    out_arb_.assign(num_resources, RoundRobinArbiter(
        static_cast<std::uint32_t>(total_ports)));

    if (topo_.hasSharedPhysicalChannels()) {
        arb_key_.resize(total_ports);
        for (std::uint32_t p = 0; p < total_ports; ++p) {
            const int local = localOf(p);
            if (local == localPort())
                continue;   // Delivery channels are not multiplexed.
            arb_key_[p] =
                static_cast<std::uint64_t>(routerOf(p)) * 256u +
                topo_.physicalChannelGroup(static_cast<DirId>(local));
        }
    }

    if (config_.obs.networkEnabled()) {
        obs_ = std::make_unique<NetworkObserver>(config_.obs,
                                                 total_ports);
        chan_stats_ = obs_->channels();
        trace_sink_ = obs_->trace();
        inj_log_ = obs_->injections();
    }

    closed_loop_ = config_.workload.closedLoop();
    reply_length_ = config_.workload.reply_length;
    reply_delay_ = 1 + config_.workload.think_cycles;

    // Output-selection policy, built like the classic engine's
    // against the active route decider; congestion snapshots are
    // sized only on demand.
    sel_ = makeSelectionPolicy(config_.selection_policy.empty()
                                   ? toString(config_.output_selection)
                                   : config_.selection_policy,
                               *decider_);
    sel_needs_ = sel_->needs();
    if (sel_needs_.free_slots)
        free_snap_.assign(total_ports, 0);
    if (sel_needs_.regional) {
        regional_snap_.assign(total_ports, 0);
        blocked_ewma_.assign(total_ports, 0);
        router_blocked_.assign(topo_.numNodes(), 0);
        fwd_stamp_.assign(total_ports, ~0ULL);
    }

    // Shard plan; gates identical to the classic engine (an
    // RNG-consuming policy, the packet trace, and the injection
    // capture log are serial artifacts).
    unsigned requested = config_.sim_threads != 0
        ? config_.sim_threads
        : std::thread::hardware_concurrency();
    if (requested == 0)
        requested = 1;
    if (sel_->consumesGlobalRng() ||
        config_.input_selection == InputSelection::Random) {
        requested = 1;
    }
    if (trace_sink_ || inj_log_)
        requested = 1;
    plan_ = ShardPlan::build(topo_.numNodes(), ports_per_router_,
                             requested);
    num_shards_ = plan_.numShards();
    packets_.configureArenas(num_shards_);
    flit_mail_.configure(num_shards_);
    release_mail_.configure(num_shards_);
    credit_mail_.configure(num_shards_);
    shards_.resize(num_shards_);
    for (std::uint32_t s = 0; s < num_shards_; ++s) {
        Shard &sh = shards_[s];
        sh.node_begin = plan_.nodeBegin(s);
        sh.node_end = plan_.nodeEnd(s);
        sh.port_begin = plan_.portBegin(s);
        sh.port_end = plan_.portEnd(s);
        sh.move_memo.assign(total_ports, ~0ULL);
        sh.credit_ring.resize(credit_delay_ + 1);
    }
    if (num_shards_ > 1)
        team_ = std::make_unique<WorkerTeam>(num_shards_);

    source_queues_.resize(topo_.numNodes());
    source_pending_.assign(topo_.numNodes(), 0);
    sources_ = buildNodeSources(topo_.numNodes(),
                                config_.injection_rate,
                                config_.lengths, pattern_,
                                config_.workload, config_.seed);
    arrival_due_.reserve(topo_.numNodes());
    for (NodeId v = 0; v < topo_.numNodes(); ++v)
        arrival_due_.push_back(sources_[v].nextDue(generate_));
}

void
VcNetwork::fifoPush(Shard &sh, std::uint32_t port, const Flit &flit)
{
    InPort &in = in_ports_[port];
    std::uint32_t idx = in.fifo_head + in.fifo_size;
    if (idx >= buffer_depth_)
        idx -= buffer_depth_;
    flit_slab_[port * buffer_depth_ + idx] = flit;
    ++in.fifo_size;
    // A header only ever enters an empty, unbound VC buffer (one
    // packet per VC), so it is at the front and unrouted right now.
    if (flit.head) {
        head_waiting_[port] = 1;
        waiting_pos_[port] =
            static_cast<std::uint32_t>(sh.waiting_list.size());
        sh.waiting_list.push_back(port);
    }
}

Flit
VcNetwork::fifoPop(std::uint32_t port)
{
    InPort &in = in_ports_[port];
    const Flit flit = flit_slab_[port * buffer_depth_ + in.fifo_head];
    ++in.fifo_head;
    if (in.fifo_head >= buffer_depth_)
        in.fifo_head = 0;
    --in.fifo_size;
    return flit;
}

void
VcNetwork::markActive(Shard &sh, std::uint32_t port)
{
    if (!is_active_[port]) {
        is_active_[port] = 1;
        sh.active_ports.push_back(port);
    }
}

void
VcNetwork::stampProgress(PacketSlot slot)
{
    // Several shards may move flits of the same packet in one cycle;
    // every stamp writes the same value, so relaxed is enough.
    std::atomic_ref<std::uint64_t>(progress_[slot])
        .store(cycle_, std::memory_order_relaxed);
}

void
VcNetwork::step()
{
    if (team_)
        team_->run([this](unsigned rank) { stepShard(rank); });
    else
        stepShard(0);
    serialTail();
}

void
VcNetwork::stepShard(std::uint32_t s)
{
    Shard &sh = shards_[s];
    sh.moved = false;

    // Snapshot cycle-start congestion for the selection policy,
    // before this shard's own credit returns mutate the counters.
    // Sources are frozen until phases several barriers away and the
    // snapshot arrays are owner-local, so no extra barrier needed.
    if (sel_needs_.free_slots || sel_needs_.regional)
        snapshotCongestion(sh);

    // Phase: sample arrivals, then the serial slot/id reservation.
    // With a closed loop, matured replies must be staged even while
    // stochastic generation is off (drain phases honor the
    // message-dependency chain).
    if (generate_ || closed_loop_) {
        generateSample(sh);
        sync();
        if (s == 0)
            prepareGeneration();
        sync();
    }

    // Phase: apply own credit returns, commit staged arrivals, and
    // run VC allocation. All three touch only shard-owned state (a
    // VA bid always targets an output VC of the bidder's router).
    if (!ideal_)
        applyCreditReturns(sh);
    if (generate_ || closed_loop_)
        commitGeneration(sh, s);
    allocateVcs(sh);
    sync();

    // Phase: decide moves against the frozen cycle-start state.
    sh.moves.clear();
    if (ideal_)
        decideMovesIdeal(sh);
    else
        decideMovesCredit(sh);
    sync();

    if (ideal_ && !arb_key_.empty()) {
        // Serial mini-phase: one flit per physical wire per cycle
        // (credit mode routes wire contention through the separable
        // switch allocator instead).
        if (s == 0)
            arbitratePhysicalChannels();
        sync();
    }

    // Phase: pop commit (credits consumed and returned here).
    popMoves(sh, s);
    sync();

    // Phase: push commit.
    pushMoves(sh, s);
    compactActive(sh);
    injectFlits(sh);
    recordHeldPorts(sh);
    if (sel_needs_.regional)
        updateCongestion(sh);
    sync();

    // Phase: mailboxed slot releases and upstream credits go home.
    drainMailboxes(s);
}

void
VcNetwork::generateSample(Shard &sh)
{
    sh.staged.clear();
    const double now = static_cast<double>(cycle_);
    for (NodeId v = sh.node_begin; v < sh.node_end; ++v) {
        if (arrival_due_[v] > now)
            continue;
        sources_[v].emit(cycle_, generate_, sh.staged);
        arrival_due_[v] = sources_[v].nextDue(generate_);
    }
}

void
VcNetwork::prepareGeneration()
{
    // Serial prefix sum over contiguous ascending shard ranges
    // reproduces the serial node-order id sequence exactly.
    PacketId base = next_packet_id_;
    for (Shard &sh : shards_) {
        sh.id_base = base;
        base += static_cast<PacketId>(sh.staged.size());
    }
    next_packet_id_ = base;
    for (std::uint32_t s = 0; s < num_shards_; ++s)
        packets_.reserveExtra(s, shards_[s].staged.size());
    if (packets_.capacity() > progress_.size())
        progress_.resize(packets_.capacity());
}

void
VcNetwork::commitGeneration(Shard &sh, std::uint32_t s)
{
    const double now = static_cast<double>(cycle_);
    PacketId id = sh.id_base;
    for (const SourcedPacket &sp : sh.staged) {
        const PacketSlot slot = packets_.allocate(s);
        PacketState &pkt = packets_[slot];
        pkt.id = id++;
        pkt.src = sp.src;
        pkt.dest = sp.dest;
        pkt.length = sp.length;
        pkt.created = now;
        pkt.reply = sp.reply;
        source_queues_[sp.src].push_back(slot);
        source_pending_[sp.src] = 1;
        ++sh.counters.packets_generated;
        sh.counters.flits_generated += sp.length;
        sh.counters.source_queue_flits += sp.length;
        if (inj_log_)
            inj_log_->append({cycle_, sp.src, sp.dest, sp.length});
    }
}

void
VcNetwork::applyCreditReturns(Shard &sh)
{
    auto &bucket = sh.credit_ring[cycle_ % sh.credit_ring.size()];
    for (const CreditEvent &e : bucket) {
        ++credits_[e.out_port];
        TM_ASSERT(credits_[e.out_port] <=
                      static_cast<std::int64_t>(buffer_depth_),
                  "credit counter above downstream buffer depth");
        // The tail flit's credit doubles as the VC-free signal: the
        // output VC returns to the allocatable pool only once the
        // downstream buffer holds none of the departing packet.
        if (e.vc_free)
            out_ports_[e.out_port].owner = kNoSlot;
    }
    bucket.clear();
}

void
VcNetwork::scheduleCredit(std::uint32_t s, std::uint32_t out_port,
                          bool vc_free)
{
    const CreditEvent e{out_port,
                        static_cast<std::uint8_t>(vc_free)};
    const std::uint32_t owner = plan_.shardOfPort(out_port);
    if (owner == s) {
        Shard &sh = shards_[s];
        sh.credit_ring[(cycle_ + credit_delay_) %
                       sh.credit_ring.size()]
            .push_back(e);
    } else {
        credit_mail_.box(s, owner).push_back(e);
    }
}

void
VcNetwork::gatherBid(Shard &sh, std::uint32_t port)
{
    const InPort &in = in_ports_[port];
    const Flit &flit = fifoFront(port);
    TM_ASSERT(in.fifo_size > 0 && in.granted_out == -1 && flit.head,
              "head_waiting_ flag out of sync");
    const PacketState &pkt = packets_[flit.slot];
    const NodeId here = routerOf(port);
    const int local = localOf(port);

    std::uint32_t preferred;
    if (pkt.dest == here) {
        // Eject through the local delivery channel.
        const std::uint32_t eject = inPortId(here, localPort());
        if (out_ports_[eject].owner != kNoSlot)
            return;
        preferred = eject;
    } else {
        const std::optional<Direction> in_dir =
            local == localPort()
                ? std::nullopt
                : std::make_optional(
                      Direction::fromId(static_cast<DirId>(local)));
        DirectionSet candidates;
        for (Direction d : decider_->routeSet(here, in_dir,
                                              pkt.dest)) {
            const std::uint32_t out = inPortId(here, d.id());
            if (out_ports_[out].owner == kNoSlot)
                candidates.insert(d);
        }
        if (candidates.empty())
            return;
        SelectionQuery q;
        q.candidates = candidates;
        q.in_dir = in_dir;
        q.here = here;
        q.dest = pkt.dest;
        q.packet = static_cast<std::uint64_t>(pkt.id);
        q.port_base = inPortId(here, 0);
        q.free_slots =
            free_snap_.empty() ? nullptr : free_snap_.data();
        q.congestion =
            regional_snap_.empty() ? nullptr : regional_snap_.data();
        q.rng = &router_rng_;
        preferred = inPortId(here, sel_->pick(q).id());
    }
    sh.bids.push_back({preferred, {port, in.header_arrival}});
}

void
VcNetwork::allocateVcs(Shard &sh)
{
    // VC allocation: every route-computed header bids for the single
    // free output VC its output-selection policy prefers; the
    // input-selection policy picks one winner per output VC. Bids are
    // sorted before use, so the compact waiting list's order is
    // unobservable under deterministic policies (Random policies
    // consume router_rng_ in list order, which forces one shard).
    sh.bids.clear();
    for (std::uint32_t port : sh.waiting_list) {
        if (cycle_ >= va_ready_at_[port])
            gatherBid(sh, port);
    }

    std::sort(sh.bids.begin(), sh.bids.end(),
              [](const Bid &a, const Bid &b) {
                  if (a.out_port != b.out_port)
                      return a.out_port < b.out_port;
                  return a.request.in_port < b.request.in_port;
              });
    std::size_t i = 0;
    while (i < sh.bids.size()) {
        sh.bid_group.clear();
        const std::uint32_t out = sh.bids[i].out_port;
        while (i < sh.bids.size() && sh.bids[i].out_port == out)
            sh.bid_group.push_back(sh.bids[i++].request);
        const std::size_t win =
            selectInput(config_.input_selection, sh.bid_group,
                        router_rng_);
        const std::uint32_t in_port = sh.bid_group[win].in_port;
        InPort &in = in_ports_[in_port];
        out_ports_[out].owner = fifoFront(in_port).slot;
        in.granted_out = localOf(out);
        granted_[in_port] = 1;
        granted_out_port_[in_port] = out;
        granted_target_[in_port] = out_to_in_[out];
        // Charge the VA stage: the winner may compete in switch
        // allocation from the next cycle when pipelined, immediately
        // (classic timing) otherwise.
        sa_ready_at_[in_port] = cycle_ + (pipelined_ ? 1 : 0);
        head_waiting_[in_port] = 0;
        const std::uint32_t pos = waiting_pos_[in_port];
        const std::uint32_t last = sh.waiting_list.back();
        sh.waiting_list[pos] = last;
        waiting_pos_[last] = pos;
        sh.waiting_list.pop_back();
    }
}

bool
VcNetwork::headCanMoveCompute(Shard &sh, std::uint32_t port)
{
    // Ideal-credit movability, replicated from the classic engine so
    // the degenerate configuration is semantics-identical: instant
    // occupancy checks with same-cycle chained refills, and a
    // dependency cycle resolving to "cannot move" through the
    // on-stack memo state. The memo is the exploring shard's own.
    sh.move_memo[port] = (cycle_ << 2) | 1;

    bool result = false;
    const InPort &in = in_ports_[port];
    if (in.fifo_size > 0 && in.granted_out != -1 &&
        cycle_ >= sa_ready_at_[port]) {
        const std::int32_t target = granted_target_[port];
        if (target < 0) {
            // Ejection: the destination consumes immediately.
            result = true;
        } else {
            const auto target_port = static_cast<std::uint32_t>(target);
            const InPort &next = in_ports_[target_port];
            const Flit &flit = fifoFront(port);
            if (next.fifo_size < buffer_depth_) {
                result = next.cur_slot == kNoSlot
                    || next.cur_slot == flit.slot;
            } else if (headCanMove(sh, target_port)) {
                result = next.cur_slot == flit.slot
                    || next.fifo_size == 1;
            }
        }
    }
    sh.move_memo[port] = (cycle_ << 2) | (result ? 2u : 3u);
    return result;
}

void
VcNetwork::decideMovesIdeal(Shard &sh)
{
    for (std::uint32_t port : sh.active_ports) {
        if (!granted_[port])
            continue;
        if (!headCanMove(sh, port))
            continue;
        sh.moves.push_back({port, granted_target_[port],
                            granted_out_port_[port]});
    }
}

void
VcNetwork::decideMovesCredit(Shard &sh)
{
    // Gather switch-allocation requests: granted VCs with a buffered
    // flit, past their VA pipeline stage, holding a credit (ejection
    // needs none — the destination consumes immediately). A flit-ready
    // VC without a credit charges the credit-stall counter, the
    // backpressure signal the per-VC observability exports. The whole
    // allocation is router-local: crossbar resources, arbiters, and
    // credit counters all belong to the input port's router.
    sh.sa_reqs.clear();
    for (std::uint32_t port : sh.active_ports) {
        if (!granted_[port])
            continue;
        const InPort &in = in_ports_[port];
        if (in.fifo_size == 0)
            continue;
        if (cycle_ < sa_ready_at_[port])
            continue;
        const std::uint32_t out = granted_out_port_[port];
        if (granted_target_[port] >= 0 && credits_[out] <= 0) {
            ++credit_stall_[out];
            continue;
        }
        sh.sa_reqs.push_back({port, out});
    }
    if (sh.sa_reqs.empty())
        return;

    // Separable two-stage allocation. Each stage keeps one request
    // per crossbar resource under that resource's round-robin
    // arbiter; a request must survive both stages. Requests are
    // unique per input VC (one granted output each) and per output VC
    // (one owner each), so a stage winner is unambiguous.
    const auto filterStage = [this, &sh](std::vector<SaRequest> &from,
                                         std::vector<SaRequest> &to,
                                         bool by_input) {
        const auto key = [this, by_input](const SaRequest &r) {
            return by_input ? in_group_[r.in_port]
                            : out_wire_[r.out_port];
        };
        const auto member = [by_input](const SaRequest &r) {
            return by_input ? r.in_port : r.out_port;
        };
        std::sort(from.begin(), from.end(),
                  [&](const SaRequest &a, const SaRequest &b) {
                      if (key(a) != key(b))
                          return key(a) < key(b);
                      return member(a) < member(b);
                  });
        to.clear();
        std::size_t i = 0;
        while (i < from.size()) {
            const std::uint32_t k = key(from[i]);
            std::size_t j = i;
            sh.sa_members.clear();
            while (j < from.size() && key(from[j]) == k) {
                sh.sa_members.push_back(member(from[j]));
                ++j;
            }
            if (j - i == 1) {
                to.push_back(from[i]);
            } else {
                const RoundRobinArbiter &arb =
                    by_input ? in_arb_[k] : out_arb_[k];
                const std::uint32_t w = arb.select(
                    sh.sa_members.data(), sh.sa_members.size());
                for (std::size_t m = i; m < j; ++m) {
                    if (member(from[m]) == w) {
                        to.push_back(from[m]);
                        break;
                    }
                }
            }
            i = j;
        }
    };

    if (sa_arbiter_ == SwitchArbiter::InputFirst) {
        filterStage(sh.sa_reqs, sh.sa_stage, true);
        filterStage(sh.sa_stage, sh.sa_reqs, false);
    } else {
        filterStage(sh.sa_reqs, sh.sa_stage, false);
        filterStage(sh.sa_stage, sh.sa_reqs, true);
    }

    // Priority pointers advance only on confirmed grants, so a stage
    // winner that loses the other stage keeps its priority.
    for (const SaRequest &r : sh.sa_reqs) {
        in_arb_[in_group_[r.in_port]].confirm(r.in_port);
        out_arb_[out_wire_[r.out_port]].confirm(r.out_port);
        sh.moves.push_back({r.in_port, granted_target_[r.in_port],
                            r.out_port});
    }
}

void
VcNetwork::arbitratePhysicalChannels()
{
    // Ideal-credit mode on shared wires: the classic engine's
    // rotating-priority wire arbitration with transitive cancellation
    // of dependent chained refills, run serially over the
    // concatenation of every shard's moves with group members in
    // canonical (wire, from-port) order. (Credit mode routes wire
    // contention through the separable switch allocator instead.)
    all_moves_.clear();
    arb_shard_base_.clear();
    for (Shard &sh : shards_) {
        arb_shard_base_.push_back(all_moves_.size());
        all_moves_.insert(all_moves_.end(), sh.moves.begin(),
                          sh.moves.end());
    }
    arb_shard_base_.push_back(all_moves_.size());

    arb_groups_.clear();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(all_moves_.size()); ++i) {
        if (all_moves_[i].to < 0)
            continue;   // Delivery channels are not multiplexed.
        arb_groups_.emplace_back(
            arb_key_[all_moves_[i].out],
            (static_cast<std::uint64_t>(all_moves_[i].from) << 32) |
                i);
    }
    std::sort(arb_groups_.begin(), arb_groups_.end());

    arb_cancelled_.assign(all_moves_.size(), 0);
    arb_worklist_.clear();
    std::size_t i = 0;
    while (i < arb_groups_.size()) {
        std::size_t j = i;
        while (j < arb_groups_.size() &&
               arb_groups_[j].first == arb_groups_[i].first) {
            ++j;
        }
        const std::size_t members = j - i;
        if (members > 1) {
            const std::size_t keep =
                static_cast<std::size_t>(cycle_ % members);
            for (std::size_t k = 0; k < members; ++k) {
                if (k == keep)
                    continue;
                const auto idx = static_cast<std::uint32_t>(
                    arb_groups_[i + k].second & 0xffffffffu);
                arb_cancelled_[idx] = 1;
                arb_worklist_.push_back(idx);
            }
        }
        i = j;
    }

    if (arb_worklist_.empty())
        return;

    for (const Move &m : all_moves_) {
        if (m.to >= 0)
            arb_move_into_[m.to] = static_cast<std::int32_t>(
                &m - all_moves_.data());
    }
    for (std::size_t head = 0; head < arb_worklist_.size(); ++head) {
        const std::uint32_t dead = arb_worklist_[head];
        const std::uint32_t buffer = all_moves_[dead].from;
        if (in_ports_[buffer].fifo_size < buffer_depth_)
            continue;   // The incoming move still has room.
        const std::int32_t feeder = arb_move_into_[buffer];
        if (feeder < 0 || arb_cancelled_[feeder])
            continue;
        arb_cancelled_[feeder] = 1;
        arb_worklist_.push_back(static_cast<std::uint32_t>(feeder));
    }
    for (const Move &m : all_moves_) {
        if (m.to >= 0)
            arb_move_into_[m.to] = -1;
    }

    for (std::uint32_t s = 0; s < num_shards_; ++s) {
        Shard &sh = shards_[s];
        sh.moves.clear();
        for (std::size_t m = arb_shard_base_[s];
             m < arb_shard_base_[s + 1]; ++m) {
            if (!arb_cancelled_[m])
                sh.moves.push_back(all_moves_[m]);
        }
    }
}

void
VcNetwork::popMoves(Shard &sh, std::uint32_t s)
{
    // Pop all moving flits first so same-cycle chained refills (ideal
    // mode) see consistent state, then push them downstream (next
    // phase). Credits are consumed here (m.out is at m.from's router)
    // and returned upstream — by mailbox when the upstream output VC
    // lives in another shard.
    sh.in_flight.clear();
    for (const Move &m : sh.moves) {
        InPort &in = in_ports_[m.from];
        const Flit flit = fifoPop(m.from);
        if (chan_stats_)
            chan_stats_->recordForward(m.out, cycle_);
        if (!fwd_stamp_.empty())
            fwd_stamp_[m.out] = cycle_;
        if (!ideal_) {
            if (m.to >= 0) {
                TM_ASSERT(credits_[m.out] > 0,
                          "flit sent without a credit");
                --credits_[m.out];
            }
            // This pop freed one slot of m.from's buffer: return a
            // credit to the upstream output VC feeding it (none for
            // the injection port — its upstream is the source queue).
            const std::int32_t up = in_to_out_[m.from];
            if (up >= 0)
                scheduleCredit(s, static_cast<std::uint32_t>(up),
                               flit.tail);
        }
        if (flit.tail) {
            // The tail releases the buffer binding; the output VC is
            // released now under ideal credits (and for ejection,
            // which has no downstream buffer), otherwise by the
            // downstream tail pop's VC-free signal.
            if (ideal_ || m.to < 0)
                out_ports_[m.out].owner = kNoSlot;
            in.cur_slot = kNoSlot;
            in.granted_out = -1;
            granted_[m.from] = 0;
            if (in.fifo_size == 0 && !maybe_free_[m.from]) {
                maybe_free_[m.from] = 1;
                ++sh.freed_candidates;
            }
        }
        if (m.to >= 0) {
            const std::uint32_t owner =
                plan_.shardOfPort(static_cast<std::uint32_t>(m.to));
            if (owner != s) {
                flit_mail_.box(s, owner).push_back(
                    {flit, m.from, m.to, m.out});
                continue;
            }
        }
        sh.in_flight.push_back({flit, m.from, m.to, m.out});
    }
}

void
VcNetwork::pushOne(Shard &sh, std::uint32_t s, const InFlight &f)
{
    sh.moved = true;
    ++sh.counters.flit_moves;
    stampProgress(f.flit.slot);
    if (f.to < 0) {
        // Consumed at the destination.
        PacketState &pkt = packets_[f.flit.slot];
        ++pkt.flits_delivered;
        ++sh.counters.flits_delivered;
        --sh.counters.flits_in_network;
        if (f.flit.tail) {
            ++sh.counters.packets_delivered;
            if (trace_sink_)
                trace_sink_->record({cycle_, pkt.id, pkt.dest, 0,
                                     TraceEventKind::Deliver});
            sh.completions.push_back({pkt.id, pkt.src, pkt.dest,
                                      pkt.length, pkt.hops, pkt.created,
                                      pkt.injected,
                                      static_cast<double>(cycle_)});
            // Closed loop: a delivered request schedules its reply at
            // the destination node. Shard-safe without a mailbox —
            // ejections are never mailboxed, so pkt.dest's source
            // belongs to this shard, and one ejection channel per
            // node means at most one reply per node per cycle.
            if (closed_loop_ && !pkt.reply) {
                sources_[pkt.dest].scheduleReply(
                    cycle_ + reply_delay_, pkt.src, reply_length_);
                arrival_due_[pkt.dest] =
                    sources_[pkt.dest].nextDue(generate_);
            }
            const std::uint32_t arena = packets_.arenaOf(f.flit.slot);
            if (arena == s)
                packets_.release(f.flit.slot);
            else
                release_mail_.box(s, arena).push_back(f.flit.slot);
        }
        return;
    }
    const auto to = static_cast<std::uint32_t>(f.to);
    InPort &next = in_ports_[to];
    TM_ASSERT(next.fifo_size < buffer_depth_,
              "flit pushed into a full buffer");
    TM_ASSERT(next.cur_slot == kNoSlot ||
                  next.cur_slot == f.flit.slot,
              "two packets interleaved in one VC buffer");
    fifoPush(sh, to, f.flit);
    if (chan_stats_)
        chan_stats_->recordOccupancy(to, next.fifo_size);
    if (f.flit.head) {
        PacketState &pkt = packets_[f.flit.slot];
        next.cur_slot = f.flit.slot;
        next.header_arrival = cycle_;
        // Charge the route-compute stage: the header may bid in VA
        // the cycle after arrival (classic timing), one later when
        // pipelined.
        va_ready_at_[to] = cycle_ + 1 + (pipelined_ ? 1 : 0);
        ++pkt.hops;
        ++sh.counters.header_hops;
        if (trace_sink_)
            trace_sink_->record({cycle_, pkt.id, routerOf(f.from),
                                 static_cast<DirId>(localOf(to)),
                                 TraceEventKind::Route});
    }
    markActive(sh, to);
}

void
VcNetwork::pushMoves(Shard &sh, std::uint32_t s)
{
    for (const InFlight &f : sh.in_flight)
        pushOne(sh, s, f);
    sh.in_flight.clear();
    if (num_shards_ > 1) {
        flit_mail_.drainTo(
            s, [&](const InFlight &f) { pushOne(sh, s, f); });
    }
}

void
VcNetwork::compactActive(Shard &sh)
{
    // Compact the active list (identical to the classic engine).
    if (sh.freed_candidates == 0)
        return;
    sh.freed_candidates = 0;
    std::size_t keep = 0;
    for (std::uint32_t port : sh.active_ports) {
        if (!maybe_free_[port]) {
            sh.active_ports[keep++] = port;
            continue;
        }
        maybe_free_[port] = 0;
        const InPort &in = in_ports_[port];
        if (in.fifo_size > 0 || in.cur_slot != kNoSlot) {
            sh.active_ports[keep++] = port;
        } else {
            is_active_[port] = 0;
        }
    }
    sh.active_ports.resize(keep);
}

void
VcNetwork::injectFlits(Shard &sh)
{
    // Runs after traversal so a single-flit injection buffer sustains
    // one flit per cycle, the injection channel's full bandwidth.
    for (NodeId v = sh.node_begin; v < sh.node_end; ++v) {
        if (!source_pending_[v])
            continue;
        auto &queue = source_queues_[v];
        const std::uint32_t port = inPortId(v, localPort());
        InPort &in = in_ports_[port];
        if (in.fifo_size >= buffer_depth_)
            continue;
        const PacketSlot slot = queue.front();
        PacketState &pkt = packets_[slot];
        if (in.cur_slot != kNoSlot && in.cur_slot != slot)
            continue;   // Previous packet's tail still in the buffer.
        Flit flit;
        flit.slot = slot;
        flit.head = pkt.flits_injected == 0;
        flit.tail = pkt.flits_injected + 1 == pkt.length;
        fifoPush(sh, port, flit);
        ++pkt.flits_injected;
        stampProgress(slot);
        --sh.counters.source_queue_flits;
        ++sh.counters.flits_in_network;
        ++sh.counters.flit_moves;
        sh.moved = true;
        if (flit.head) {
            in.cur_slot = slot;
            in.header_arrival = cycle_;
            va_ready_at_[port] = cycle_ + 1 + (pipelined_ ? 1 : 0);
            pkt.injected = static_cast<double>(cycle_);
            if (trace_sink_)
                trace_sink_->record({cycle_, pkt.id, v, 0,
                                     TraceEventKind::Inject});
        }
        if (flit.tail) {
            queue.pop_front();
            if (queue.empty())
                source_pending_[v] = 0;
        }
        markActive(sh, port);
    }
}

void
VcNetwork::recordHeldPorts(Shard &sh)
{
    if (!chan_stats_)
        return;
    for (std::uint32_t p = sh.port_begin; p < sh.port_end; ++p) {
        if (out_ports_[p].owner != kNoSlot)
            chan_stats_->recordHeld(p, cycle_);
    }
}

void
VcNetwork::snapshotCongestion(Shard &sh)
{
    // Own output ports only (a bid's candidate outputs sit at the
    // bidding port's own router). Under real credit flow the credit
    // counters are already owner-local; ideal mode reads the
    // downstream buffers directly, like the classic engine.
    for (std::uint32_t p = sh.port_begin; p < sh.port_end; ++p) {
        const std::int32_t down = out_to_in_[p];
        if (!free_snap_.empty()) {
            std::int64_t free = static_cast<std::int64_t>(
                buffer_depth_);
            if (down >= 0) {
                free = ideal_
                    ? static_cast<std::int64_t>(buffer_depth_) -
                        in_ports_[static_cast<std::uint32_t>(down)]
                            .fifo_size
                    : credits_[p];
            }
            free_snap_[p] =
                static_cast<std::uint16_t>(free < 0 ? 0 : free);
        }
        if (!regional_snap_.empty()) {
            std::uint32_t r =
                static_cast<std::uint32_t>(blocked_ewma_[p]);
            if (down >= 0)
                r += router_blocked_[port_router_[
                    static_cast<std::uint32_t>(down)]];
            regional_snap_[p] = r;
        }
    }
}

void
VcNetwork::updateCongestion(Shard &sh)
{
    // Same Q16 blocked EWMA as the classic engine: an owned output
    // VC either forwarded this cycle or sat blocked (no credits, an
    // upstream bubble, or a lost switch allocation).
    constexpr std::int32_t kOne = 1 << 16;
    constexpr int kShift = 6;
    for (std::uint32_t p = sh.port_begin; p < sh.port_end; ++p) {
        const bool blocked = out_ports_[p].owner != kNoSlot &&
            fwd_stamp_[p] != cycle_;
        blocked_ewma_[p] +=
            ((blocked ? kOne : 0) - blocked_ewma_[p]) >> kShift;
    }
    for (NodeId v = sh.node_begin; v < sh.node_end; ++v) {
        std::uint32_t sum = 0;
        for (int d = 0; d < topo_.numDirs(); ++d)
            sum += static_cast<std::uint32_t>(
                blocked_ewma_[inPortId(v, d)]);
        router_blocked_[v] = sum;
    }
}

void
VcNetwork::drainMailboxes(std::uint32_t s)
{
    if (num_shards_ == 1)
        return;
    release_mail_.drainTo(
        s, [this](PacketSlot slot) { packets_.release(slot); });
    // Mailboxed credits were scheduled this cycle, so they file into
    // the same landing bucket the owner's local schedules used.
    Shard &sh = shards_[s];
    auto &bucket = sh.credit_ring[(cycle_ + credit_delay_) %
                                  sh.credit_ring.size()];
    credit_mail_.drainTo(
        s, [&](const CreditEvent &e) { bucket.push_back(e); });
}

void
VcNetwork::mergeCounters()
{
    NetworkCounters total;
    for (const Shard &sh : shards_) {
        const NetworkCounters &c = sh.counters;
        total.packets_generated += c.packets_generated;
        total.packets_delivered += c.packets_delivered;
        total.flits_generated += c.flits_generated;
        total.flits_delivered += c.flits_delivered;
        total.header_hops += c.header_hops;
        total.source_queue_flits += c.source_queue_flits;
        total.flits_in_network += c.flits_in_network;
        total.flit_moves += c.flit_moves;
    }
    counters_ = total;
}

void
VcNetwork::serialTail()
{
    mergeCounters();
    moved_this_cycle_ = false;
    for (Shard &sh : shards_) {
        if (sh.moved)
            moved_this_cycle_ = true;
        if (!sh.completions.empty()) {
            completions_.insert(completions_.end(),
                                sh.completions.begin(),
                                sh.completions.end());
            sh.completions.clear();
        }
    }

    if (chan_stats_)
        chan_stats_->tick();

    // Deadlock watchdog: packets in the network but nothing moved.
    if (!moved_this_cycle_ && counters_.flits_in_network > 0)
        ++stall_cycles_;
    else
        stall_cycles_ = 0;
    if ((cycle_ & 0x3ff) == 0) {
        packet_stall_flag_ = packet_stall_flag_
            || oldestPacketStall() >= config_.deadlock_threshold;
    }
    ++cycle_;
}

void
VcNetwork::setGenerationEnabled(bool enabled)
{
    if (generate_ == enabled)
        return;
    generate_ = enabled;
    // The due-time cache answers "when can this source emit?", which
    // depends on the mode: with generation off only pending replies
    // count, and turning it back on must re-expose the arrival clock.
    for (NodeId v = 0; v < topo_.numNodes(); ++v)
        arrival_due_[v] = sources_[v].nextDue(generate_);
}

PacketId
VcNetwork::post(NodeId src, NodeId dest, std::uint32_t length)
{
    TM_ASSERT(src < topo_.numNodes() && dest < topo_.numNodes(),
              "post() endpoints out of range");
    TM_ASSERT(src != dest, "post() requires distinct endpoints");
    TM_ASSERT(length >= 1, "a packet has at least one flit");
    const std::uint32_t s = plan_.shardOfNode(src);
    const PacketSlot slot = packets_.allocate(s);
    if (slot >= progress_.size())
        progress_.resize(slot + 1);
    PacketState &pkt = packets_[slot];
    pkt.id = next_packet_id_++;
    pkt.src = src;
    pkt.dest = dest;
    pkt.length = length;
    pkt.created = static_cast<double>(cycle_);
    progress_[slot] = cycle_;
    source_queues_[src].push_back(slot);
    source_pending_[src] = 1;
    NetworkCounters &c = shards_[s].counters;
    ++c.packets_generated;
    c.flits_generated += length;
    c.source_queue_flits += length;
    if (inj_log_)
        inj_log_->append({cycle_, src, dest, length});
    mergeCounters();   // Keep the merged view current between steps.
    return pkt.id;
}

void
VcNetwork::drainCompletions(std::vector<Completion> &out)
{
    out.clear();
    out.swap(completions_);
    // Completions are recorded in delivery-scan order, which depends
    // on the shard layout; ascending id order is the canonical,
    // shard-count-invariant presentation.
    std::sort(out.begin(), out.end(),
              [](const Completion &a, const Completion &b) {
                  return a.id < b.id;
              });
}

bool
VcNetwork::deadlockDetected() const
{
    return stall_cycles_ >= config_.deadlock_threshold
        || packet_stall_flag_;
}

std::vector<PacketId>
VcNetwork::stuckPackets(std::uint64_t age) const
{
    std::vector<PacketId> stuck;
    packets_.forEachLive([&](PacketSlot slot, const PacketState &pkt) {
        if (pkt.flits_injected == 0)
            return;
        if (cycle_ - progress_[slot] >= age)
            stuck.push_back(pkt.id);
    });
    std::sort(stuck.begin(), stuck.end());
    return stuck;
}

std::uint64_t
VcNetwork::oldestPacketStall() const
{
    std::uint64_t oldest = 0;
    packets_.forEachLive([&](PacketSlot slot, const PacketState &pkt) {
        if (pkt.flits_injected == 0)
            return;
        oldest = std::max(oldest, cycle_ - progress_[slot]);
    });
    return oldest;
}

std::uint64_t
VcNetwork::sourceQueuePackets() const
{
    std::uint64_t total = 0;
    for (const auto &q : source_queues_)
        total += q.size();
    return total;
}

bool
VcNetwork::auditCredits() const
{
    if (ideal_)
        return true;
    std::vector<std::int64_t> pending(credits_.size(), 0);
    for (const Shard &sh : shards_) {
        for (const auto &bucket : sh.credit_ring) {
            for (const CreditEvent &e : bucket)
                ++pending[e.out_port];
        }
    }
    for (std::uint32_t out = 0;
         out < static_cast<std::uint32_t>(credits_.size()); ++out) {
        const std::int32_t down = out_to_in_[out];
        if (down < 0)
            continue;   // Ejection: no credit loop.
        if (credits_[out] < 0)
            return false;
        const std::int64_t round_trip = credits_[out] + pending[out]
            + in_ports_[static_cast<std::uint32_t>(down)].fifo_size;
        if (round_trip != static_cast<std::int64_t>(buffer_depth_))
            return false;
    }
    return true;
}

std::uint64_t
VcNetwork::creditStallCycles() const
{
    std::uint64_t total = 0;
    for (std::uint64_t s : credit_stall_)
        total += s;
    return total;
}

void
VcNetwork::fillObsReport(ObsReport &report) const
{
    report.schema_version = 2;
    if (chan_stats_) {
        report.observed_cycles = chan_stats_->observedCycles();
        const double cycles =
            static_cast<double>(chan_stats_->observedCycles());
        const auto row_for = [&](NodeId v, std::uint32_t out,
                                 std::string dir, int vc,
                                 std::uint32_t peak) {
            ChannelUtilRow row;
            row.node = v;
            row.coords = topo_.coords(v);
            row.dir = std::move(dir);
            row.vc = vc;
            row.flits_forwarded = chan_stats_->flitsForwarded(out);
            row.busy_cycles = chan_stats_->busyCycles(out);
            row.blocked_cycles = chan_stats_->blockedCycles(out);
            row.peak_occupancy = peak;
            row.credit_stall_cycles = credit_stall_[out];
            row.utilization = cycles > 0.0
                ? static_cast<double>(row.flits_forwarded) / cycles
                : 0.0;
            return row;
        };
        for (NodeId v = 0; v < topo_.numNodes(); ++v) {
            for (Direction d : allDirections(topo_.numDims())) {
                if (!topo_.neighbor(v, d))
                    continue;
                const std::uint32_t out = inPortId(v, d.id());
                const std::int32_t down = out_to_in_[out];
                // Rows are keyed by the physical direction plus the
                // VC index, so heatmaps of virtualized meshes stay in
                // the physical vocabulary.
                const Direction phys = Direction::fromId(
                    topo_.physicalChannelGroup(d.id()));
                report.channels.push_back(row_for(
                    v, out, directionName(phys), port_vc_[out],
                    chan_stats_->peakOccupancy(
                        static_cast<std::uint32_t>(down))));
            }
            report.channels.push_back(row_for(
                v, inPortId(v, localPort()), "eject", -1, 0));
        }
    }
    if (trace_sink_) {
        report.trace = trace_sink_->chronological();
        report.trace_dropped = trace_sink_->dropped();
    }
}

} // namespace turnmodel
