/**
 * @file
 * Deterministic round-robin arbiter for the VC router's separable
 * switch allocator. One arbiter guards one crossbar resource (a
 * physical input port or a physical output wire); its members are
 * global port ids. Priority rotates only when a grant is confirmed
 * (the request won every stage), the pointer-update rule that keeps
 * separable input-first/output-first allocation starvation free.
 *
 * Determinism contract: select() depends only on the candidate set
 * and the stored priority pointer — no randomness, no wall clock, no
 * iteration-order sensitivity (candidates may arrive in any order) —
 * so simulation results are bit-identical at any --jobs level.
 */

#ifndef TURNMODEL_ROUTER_ARBITER_HPP
#define TURNMODEL_ROUTER_ARBITER_HPP

#include <cstddef>
#include <cstdint>

namespace turnmodel {

/** Rotating-priority arbiter over member ids in [0, universe). */
class RoundRobinArbiter
{
  public:
    RoundRobinArbiter() = default;

    explicit RoundRobinArbiter(std::uint32_t universe)
        : universe_(universe)
    {
    }

    /**
     * The winner among @p n candidate ids (distinct, < universe, any
     * order, n >= 1): the candidate at the smallest cyclic distance
     * at or after the priority pointer. Does not advance the pointer.
     */
    std::uint32_t select(const std::uint32_t *candidates,
                         std::size_t n) const;

    /**
     * Record that @p winner 's grant was confirmed: priority moves to
     * the member after it, so the arbiter cycles through contenders.
     */
    void confirm(std::uint32_t winner)
    {
        next_ = winner + 1 == universe_ ? 0 : winner + 1;
    }

    /** Member currently holding top priority. */
    std::uint32_t priority() const { return next_; }

  private:
    std::uint32_t universe_ = 1;
    std::uint32_t next_ = 0;
};

} // namespace turnmodel

#endif // TURNMODEL_ROUTER_ARBITER_HPP
