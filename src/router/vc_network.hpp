/**
 * @file
 * Credit-based virtual-channel router network — the repo's second
 * cycle-accurate engine (see sim/engine.hpp for the interface and
 * sim/network.hpp for the classic single-buffer engine it is
 * differentially tested against).
 *
 * Microarchitecture (the canonical RC/VA/SA/LT organization of
 * Garnet-style VC routers): every input port of a router is one
 * virtual-channel state machine with a private multi-flit buffer.
 * A buffered header is route-computed (RC), then bids in VC
 * allocation (VA) for a free output VC chosen by the configured
 * output-selection policy, with the input-selection policy breaking
 * ties per output VC. A granted VC then competes each cycle in
 * switch allocation (SA) — a separable two-stage allocator over the
 * router's crossbar: one flit per physical input port and one flit
 * per physical output wire per cycle, each stage arbitrated by a
 * deterministic round-robin arbiter (router/arbiter.hpp), in
 * input-first or output-first order per SwitchArbiter. Winners
 * traverse the link (LT) the same cycle.
 *
 * Flow control is credit based: each output VC holds a credit
 * counter initialized to the downstream buffer depth; sending a flit
 * consumes a credit, and popping a flit from the downstream buffer
 * returns one after vc_router.credit_delay cycles. The credit
 * carrying a tail flit's pop doubles as the VC-free signal that
 * returns the output VC to the allocatable pool — exactly one packet
 * occupies a VC buffer at a time. With vc_router.ideal_credits the
 * engine instead replicates the classic engine's instantaneous
 * occupancy checks and same-cycle chained refills; combined with
 * pipelined=false, one VC and deterministic selection policies, the
 * two engines produce identical results (the degenerate differential
 * test pins this).
 *
 * Virtual channels come from the topology: on a VirtualizedMesh each
 * virtual direction is one VC of its physical wire, which is how the
 * escape-VC routing algorithm (core/routing/escape_vc.hpp) sees and
 * restricts individual VCs. On a plain mesh the engine degenerates
 * to one VC per wire.
 *
 * Sharded stepping (SimConfig::sim_threads) mirrors the classic
 * engine: contiguous router shards, barrier-separated gather/commit
 * phases on a persistent WorkerTeam, cross-shard flit handoffs and
 * packet-slot releases by mailbox. Two engine-specific pieces join
 * them: VA and SA are router-local by construction, so they need no
 * cross-shard traffic at all, and each shard owns the credit-return
 * ring of its routers' output VCs — a pop whose upstream output VC
 * lives in another shard mails the credit to that shard, which files
 * it into its own ring for the same landing cycle. Every observable
 * is bit-identical at any shard count.
 */

#ifndef TURNMODEL_ROUTER_VC_NETWORK_HPP
#define TURNMODEL_ROUTER_VC_NETWORK_HPP

#include <memory>
#include <optional>
#include <vector>

#include "core/routing.hpp"
#include "core/routing/compiled.hpp"
#include "exec/thread_pool.hpp"
#include "obs/observer.hpp"
#include "router/arbiter.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/flat_queue.hpp"
#include "sim/packet.hpp"
#include "sim/packet_pool.hpp"
#include "select/factory.hpp"
#include "sim/selection.hpp"
#include "sim/shard.hpp"
#include "traffic/pattern.hpp"
#include "traffic/source.hpp"
#include "traffic/workload.hpp"

namespace turnmodel {

struct ObsReport;

/** The simulated VC-router network. */
class VcNetwork : public NetworkEngine
{
  public:
    /**
     * @param routing Routing algorithm (also supplies the topology);
     *                must outlive this object.
     * @param pattern Traffic pattern; must outlive this object.
     * @param config  Run configuration (copied); wormhole only.
     */
    VcNetwork(const RoutingAlgorithm &routing,
              const TrafficPattern &pattern, const SimConfig &config);

    // ----- NetworkEngine ---------------------------------------------
    void step() override;
    std::uint64_t now() const override { return cycle_; }
    const NetworkCounters &counters() const override
    {
        return counters_;
    }
    void drainCompletions(std::vector<Completion> &out) override;
    std::uint64_t stallCycles() const override { return stall_cycles_; }
    bool deadlockDetected() const override;
    std::vector<PacketId> stuckPackets(std::uint64_t age)
        const override;
    std::uint64_t oldestPacketStall() const override;
    /** See Network::setGenerationEnabled: replies keep flowing while
     * stochastic generation is off, so the due cache is refreshed. */
    void setGenerationEnabled(bool enabled) override;
    PacketId post(NodeId src, NodeId dest,
                  std::uint32_t length) override;
    std::uint64_t sourceQueuePackets() const override;
    const Topology &topology() const override { return topo_; }
    const NetworkObserver *observer() const override
    {
        return obs_.get();
    }
    void fillObsReport(ObsReport &report) const override;
    unsigned shardCount() const override { return num_shards_; }

    /** In-flight packet pool capacity (soak memory high-water mark). */
    std::size_t packetPoolCapacity() const override
    {
        return packets_.capacity();
    }

    // ----- credit introspection (tests and audits) -------------------
    /** Credits the output VC leaving @p router in @p dir holds now. */
    std::int64_t credits(NodeId router, Direction dir) const
    {
        return credits_[inPortId(router, dir.id())];
    }

    /**
     * Credit conservation: for every network channel, held credits
     * plus credits in flight on the return link plus downstream
     * buffer occupancy must equal the buffer depth. Trivially true
     * under ideal_credits.
     */
    bool auditCredits() const;

    /** Total cycles any flit-ready VC spent waiting on credits. */
    std::uint64_t creditStallCycles() const;

    /** Global port id of (router, local index) — for tests. */
    std::uint32_t portId(NodeId router, int local) const
    {
        return inPortId(router, local);
    }

    /** Ports per router: 2n channel ports plus the local port. */
    int portsPerRouter() const { return ports_per_router_; }

  private:
    std::uint32_t inPortId(NodeId router, int local) const
    {
        return router * static_cast<std::uint32_t>(ports_per_router_)
            + static_cast<std::uint32_t>(local);
    }
    NodeId routerOf(std::uint32_t port) const
    {
        return port_router_[port];
    }
    int localOf(std::uint32_t port) const { return port_local_[port]; }
    int localPort() const { return ports_per_router_ - 1; }

    /** One pending flit transfer this cycle. */
    struct Move
    {
        std::uint32_t from;
        std::int32_t to;   ///< Downstream input port; -1 for ejection.
        std::uint32_t out; ///< Output port crossed.
    };

    /** A header flit's VA request for one output VC this cycle. */
    struct Bid
    {
        std::uint32_t out_port;
        InputRequest request;
    };

    /** One flit popped from its buffer, awaiting delivery downstream. */
    struct InFlight
    {
        Flit flit;
        std::uint32_t from;
        std::int32_t to;
        std::uint32_t out;
    };

    /** A granted VC's switch-allocation request this cycle. */
    struct SaRequest
    {
        std::uint32_t in_port;
        std::uint32_t out_port;
    };

    /** A credit (and possibly VC-free signal) in flight upstream. */
    struct CreditEvent
    {
        std::uint32_t out_port;
        std::uint8_t vc_free;
    };

    /** One shard's owned lists, counters, credit ring, and per-cycle
     * scratch (see sim/network.hpp — this mirrors the classic
     * engine's Shard, plus the credit-return ring). */
    struct Shard
    {
        NodeId node_begin = 0;
        NodeId node_end = 0;
        std::uint32_t port_begin = 0;
        std::uint32_t port_end = 0;

        std::vector<std::uint32_t> active_ports;
        std::vector<std::uint32_t> waiting_list;
        std::vector<std::uint64_t> move_memo;
        /** Credit-return pipeline for this shard's output VCs: bucket
         * (cycle % (delay+1)) holds the events that land at the start
         * of that cycle. */
        std::vector<std::vector<CreditEvent>> credit_ring;

        // Per-cycle scratch.
        std::vector<Bid> bids;
        std::vector<InputRequest> bid_group;
        std::vector<Move> moves;
        std::vector<InFlight> in_flight;
        std::vector<SaRequest> sa_reqs;
        std::vector<SaRequest> sa_stage;
        std::vector<std::uint32_t> sa_members;
        std::vector<SourcedPacket> staged;
        PacketId id_base = 0;

        NetworkCounters counters;
        std::vector<Completion> completions;
        std::uint32_t freed_candidates = 0;
        bool moved = false;
    };

    // ----- per-port flit rings (shared slab) -------------------------
    std::uint32_t fifoSize(std::uint32_t port) const
    {
        return in_ports_[port].fifo_size;
    }
    const Flit &fifoFront(std::uint32_t port) const
    {
        return flit_slab_[port * buffer_depth_
                          + in_ports_[port].fifo_head];
    }
    void fifoPush(Shard &sh, std::uint32_t port, const Flit &flit);
    Flit fifoPop(std::uint32_t port);

    // ----- cycle phases (see step()) ----------------------------------
    void stepShard(std::uint32_t s);
    void sync()
    {
        if (team_)
            team_->barrier();
    }
    void generateSample(Shard &sh);
    void prepareGeneration();   // Serial.
    void commitGeneration(Shard &sh, std::uint32_t s);
    void applyCreditReturns(Shard &sh);
    void allocateVcs(Shard &sh);
    void gatherBid(Shard &sh, std::uint32_t port);
    /** Classic-engine movability semantics (ideal_credits). */
    void decideMovesIdeal(Shard &sh);
    /** Credit-gated separable switch allocation (router-local). */
    void decideMovesCredit(Shard &sh);
    void arbitratePhysicalChannels();   // Serial (ideal mode).
    void popMoves(Shard &sh, std::uint32_t s);
    void pushMoves(Shard &sh, std::uint32_t s);
    void pushOne(Shard &sh, std::uint32_t s, const InFlight &f);
    void injectFlits(Shard &sh);
    void compactActive(Shard &sh);
    void recordHeldPorts(Shard &sh);
    void drainMailboxes(std::uint32_t s);
    /** Publish cycle-start congestion snapshots for the policy. */
    void snapshotCongestion(Shard &sh);
    /** Fold this cycle's channel outcomes into the blocked EWMAs. */
    void updateCongestion(Shard &sh);
    void serialTail();
    void mergeCounters();
    /** File a credit for @p out_port to land credit_delay_ cycles
     * from now — into shard @p s's own ring when it owns the port,
     * else into the owner's mailbox. */
    void scheduleCredit(std::uint32_t s, std::uint32_t out_port,
                        bool vc_free);

    bool headCanMove(Shard &sh, std::uint32_t port)
    {
        const std::uint64_t memo = sh.move_memo[port];
        if ((memo >> 2) == cycle_)
            return (memo & 3) == 2;
        return headCanMoveCompute(sh, port);
    }
    bool headCanMoveCompute(Shard &sh, std::uint32_t port);

    void markActive(Shard &sh, std::uint32_t port);
    void stampProgress(PacketSlot slot);

    // ----- state -------------------------------------------------------
    struct InPort
    {
        std::uint32_t fifo_head = 0;
        std::uint32_t fifo_size = 0;
        PacketSlot cur_slot = kNoSlot; ///< Packet bound to the VC.
        int granted_out = -1;   ///< Local output index at this router.
        std::uint64_t header_arrival = 0;
    };

    struct OutPort
    {
        PacketSlot owner = kNoSlot;
    };

    const RoutingAlgorithm &routing_;
    std::optional<CompiledRoutingTable> compiled_;
    const RoutingAlgorithm *decider_;
    const Topology &topo_;
    const TrafficPattern &pattern_;
    SimConfig config_;

    // Hoisted VcRouterConfig knobs.
    bool ideal_;
    bool pipelined_;
    std::uint32_t credit_delay_;
    SwitchArbiter sa_arbiter_;

    int ports_per_router_;
    std::uint32_t buffer_depth_;
    std::vector<InPort> in_ports_;
    std::vector<OutPort> out_ports_;
    std::vector<Flit> flit_slab_;
    /** Downstream input port of each output port; -1 for ejection. */
    std::vector<std::int32_t> out_to_in_;
    /** Upstream output port feeding each input port; -1 for the
     * injection port (its upstream is the source queue). */
    std::vector<std::int32_t> in_to_out_;
    std::vector<NodeId> port_router_;
    std::vector<std::uint8_t> port_local_;
    /** VC index of each port's channel within its physical wire. */
    std::vector<std::uint8_t> port_vc_;

    // ----- VA pipeline timing ----------------------------------------
    /** Earliest cycle the buffered header may bid in VA (charges the
     * RC stage when pipelined). */
    std::vector<std::uint64_t> va_ready_at_;
    /** Earliest cycle the granted packet may win SA (charges the VA
     * stage when pipelined). */
    std::vector<std::uint64_t> sa_ready_at_;

    // ----- credit flow control ---------------------------------------
    /** Free downstream buffer slots per output VC. */
    std::vector<std::int64_t> credits_;
    /** Cycles each output VC's queued flits waited on credits. */
    std::vector<std::uint64_t> credit_stall_;

    // ----- separable switch allocator --------------------------------
    /** Dense crossbar resource ids per port: the physical input port
     * feeding it / the physical output wire it drives. */
    std::vector<std::uint32_t> in_group_;
    std::vector<std::uint32_t> out_wire_;
    std::vector<RoundRobinArbiter> in_arb_;
    std::vector<RoundRobinArbiter> out_arb_;

    std::vector<FlatQueue<PacketSlot>> source_queues_;
    std::vector<std::uint8_t> source_pending_;
    std::vector<NodeSource> sources_;
    std::vector<double> arrival_due_;
    Rng router_rng_;

    // ----- output-selection policy -----------------------------------
    /** Policy consulted by gatherBid (RC/VA stage). */
    SelectionPolicyPtr sel_;
    SelectionNeeds sel_needs_;   ///< Which snapshots to maintain.
    /** Cycle-start credits (free downstream slots) per output VC. */
    std::vector<std::uint16_t> free_snap_;
    /** Cycle-start regional congestion per output: own blocked EWMA
     * plus the downstream router's EWMA total. */
    std::vector<std::uint32_t> regional_snap_;
    /** Q16 fixed-point blocked EWMA per output VC. */
    std::vector<std::int32_t> blocked_ewma_;
    /** Per-router sum of its network outputs' blocked EWMAs. */
    std::vector<std::uint32_t> router_blocked_;
    /** Last cycle each output VC forwarded a flit. */
    std::vector<std::uint64_t> fwd_stamp_;

    PacketPool packets_;
    PacketId next_packet_id_ = 0;
    std::vector<std::uint64_t> progress_;

    std::vector<std::uint8_t> is_active_;
    std::vector<std::uint8_t> head_waiting_;
    std::vector<std::uint32_t> waiting_pos_;
    std::vector<std::uint8_t> granted_;
    std::vector<std::uint32_t> granted_out_port_;
    std::vector<std::int32_t> granted_target_;
    std::vector<std::uint8_t> maybe_free_;
    /** Physical-wire arbitration key (ideal mode, shared wires). */
    std::vector<std::uint64_t> arb_key_;

    // ----- sharding ----------------------------------------------------
    ShardPlan plan_;
    std::uint32_t num_shards_ = 1;
    std::vector<Shard> shards_;
    std::unique_ptr<WorkerTeam> team_;
    ShardMailboxes<InFlight> flit_mail_;
    ShardMailboxes<PacketSlot> release_mail_;
    /** Credits crossing shard boundaries on their way upstream. */
    ShardMailboxes<CreditEvent> credit_mail_;

    // ----- wire-arbitration scratch (serial phase; persistent) -------
    std::vector<Move> all_moves_;
    std::vector<std::size_t> arb_shard_base_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> arb_groups_;
    std::vector<std::uint8_t> arb_cancelled_;
    std::vector<std::uint32_t> arb_worklist_;
    std::vector<std::int32_t> arb_move_into_;

    std::uint64_t cycle_ = 0;
    bool generate_ = true;
    /** Hoisted workload knobs (see sim/network.hpp). */
    bool closed_loop_ = false;
    std::uint32_t reply_length_ = 0;
    std::uint64_t reply_delay_ = 1;
    bool moved_this_cycle_ = false;
    std::uint64_t stall_cycles_ = 0;
    bool packet_stall_flag_ = false;

    NetworkCounters counters_;
    std::vector<Completion> completions_;

    std::unique_ptr<NetworkObserver> obs_;
    ChannelStats *chan_stats_ = nullptr;
    PacketTrace *trace_sink_ = nullptr;
    InjectionTrace *inj_log_ = nullptr;
};

} // namespace turnmodel

#endif // TURNMODEL_ROUTER_VC_NETWORK_HPP
