#include "exec/sweep.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "exec/runner.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace turnmodel {

double
SweepSeries::maxSustainableThroughput() const
{
    double best = 0.0;
    for (const SweepPoint &p : points) {
        if (!p.result.saturated)
            best = std::max(best, p.result.throughput_flits_per_us);
    }
    return best;
}

void
writeSimResultJson(std::ostream &os, const SimResult &r)
{
    os << "\"offered_flits_per_us\": ";
    writeJsonNumber(os, r.offered_flits_per_us);
    os << ", \"throughput_flits_per_us\": ";
    writeJsonNumber(os, r.throughput_flits_per_us);
    os << ", \"latency_us\": ";
    writeJsonNumber(os, r.avg_latency_us);
    os << ", \"network_latency_us\": ";
    writeJsonNumber(os, r.avg_network_latency_us);
    os << ", \"p99_latency_us\": ";
    writeJsonNumber(os, r.p99_latency_us);
    os << ", \"p99_latency_clamped\": "
       << (r.latency_p99_clamped ? "true" : "false")
       << ", \"avg_hops\": ";
    writeJsonNumber(os, r.avg_hops);
    os << ", \"packets\": " << r.packets_measured
       << ", \"delivered_ratio\": ";
    writeJsonNumber(os, r.delivered_ratio);
    os << ", \"saturated\": " << (r.saturated ? "true" : "false")
       << ", \"deadlocked\": " << (r.deadlocked ? "true" : "false");
}

void
SweepSeries::writeJson(std::ostream &os) const
{
    // Undo any formatting (printSeries sets fixed/precision) so
    // numbers round-trip.
    const std::ios::fmtflags flags = os.flags();
    const std::streamsize precision = os.precision();
    os.flags(std::ios::dec);
    os.precision(10);

    os << "{\"algorithm\": \"" << jsonEscape(algorithm) << "\", "
       << "\"max_sustainable_throughput_flits_per_us\": ";
    writeJsonNumber(os, maxSustainableThroughput());
    os << ", \"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        if (i > 0)
            os << ", ";
        os << "{\"injection_rate\": ";
        writeJsonNumber(os, p.injection_rate);
        os << ", ";
        writeSimResultJson(os, p.result);
        os << "}";
    }
    os << "]}";

    os.flags(flags);
    os.precision(precision);
}

void
writeSeriesJson(std::ostream &os, const std::string &experiment,
                const std::vector<SweepSeries> &series)
{
    os << "{\"experiment\": \"" << jsonEscape(experiment)
       << "\", \"series\": [";
    for (std::size_t i = 0; i < series.size(); ++i) {
        if (i > 0)
            os << ", ";
        series[i].writeJson(os);
    }
    os << "]}\n";
}

std::vector<double>
SweepConfig::ladder(double lo, double hi, int points)
{
    TM_ASSERT(lo > 0.0 && hi > lo && points >= 2, "bad ladder spec");
    std::vector<double> rates;
    const double step = std::pow(hi / lo,
                                 1.0 / static_cast<double>(points - 1));
    double rate = lo;
    for (int i = 0; i < points; ++i) {
        rates.push_back(rate);
        rate *= step;
    }
    return rates;
}

SweepSeries
runSweep(const RoutingAlgorithm &routing, const TrafficPattern &pattern,
         const SweepConfig &config)
{
    SweepSeries series;
    series.algorithm = routing.name();
    int saturated_streak = 0;
    for (double rate : config.injection_rates) {
        series.points.push_back(
            runSweepPoint(routing, pattern, config.sim, rate));
        saturated_streak = series.points.back().result.saturated
            ? saturated_streak + 1 : 0;
        if (config.stop_after_saturated > 0 &&
            saturated_streak >= config.stop_after_saturated) {
            break;
        }
    }
    return series;
}

void
printSeries(std::ostream &os, const std::string &experiment,
            const std::vector<SweepSeries> &series)
{
    os << "== " << experiment << " ==\n";
    for (const SweepSeries &s : series) {
        os << "-- algorithm: " << s.algorithm << '\n';
        os << std::setw(10) << "rate" << std::setw(14) << "offered"
           << std::setw(14) << "thruput" << std::setw(12) << "lat(us)"
           << std::setw(12) << "net(us)" << std::setw(10) << "hops"
           << std::setw(10) << "pkts" << std::setw(6) << "sat" << '\n';
        for (const SweepPoint &p : s.points) {
            const SimResult &r = p.result;
            os << std::setw(10) << std::fixed << std::setprecision(4)
               << p.injection_rate
               << std::setw(14) << std::setprecision(2)
               << r.offered_flits_per_us
               << std::setw(14) << r.throughput_flits_per_us
               << std::setw(12) << r.avg_latency_us
               << std::setw(12) << r.avg_network_latency_us
               << std::setw(10) << r.avg_hops
               << std::setw(10) << r.packets_measured
               << std::setw(6)
               << (r.deadlocked ? "DL" : r.saturated ? "yes" : "no")
               << '\n';
        }
        os << "   max sustainable throughput: " << std::setprecision(2)
           << s.maxSustainableThroughput() << " flits/us\n";
    }

    os << "-- csv --\n";
    CsvWriter csv(os);
    csv.header({"experiment", "algorithm", "injection_rate",
                "offered_flits_per_us", "throughput_flits_per_us",
                "latency_us", "network_latency_us", "p99_latency_us",
                "p99_latency_clamped", "avg_hops", "packets",
                "delivered_ratio", "saturated", "deadlocked"});
    for (const SweepSeries &s : series) {
        for (const SweepPoint &p : s.points) {
            const SimResult &r = p.result;
            csv.beginRow()
                .field(experiment)
                .field(s.algorithm)
                .field(p.injection_rate)
                .field(r.offered_flits_per_us)
                .field(r.throughput_flits_per_us)
                .field(r.avg_latency_us)
                .field(r.avg_network_latency_us)
                .field(r.p99_latency_us)
                .field(r.latency_p99_clamped ? 1 : 0)
                .field(r.avg_hops)
                .field(static_cast<std::uint64_t>(r.packets_measured))
                .field(r.delivered_ratio)
                .field(r.saturated ? 1 : 0)
                .field(r.deadlocked ? 1 : 0);
            csv.endRow();
        }
    }
}

} // namespace turnmodel
