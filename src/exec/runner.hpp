/**
 * @file
 * Thread-parallel experiment runner: expands an ExperimentSpec into
 * one independent Simulator job per (algorithm, rate) sweep point,
 * executes the jobs across a work-stealing thread pool, and
 * reassembles the series in deterministic order.
 *
 * Determinism contract: the output is bit-identical to the serial
 * sweep path (runSweep) at any job count. Each job constructs its
 * own Simulator — and its own routing instance, since turn-table
 * reachability caches are not thread safe — and every RNG stream is
 * keyed by (seed, node), so a point's result depends only on the
 * spec, never on scheduling. The serial sweep's early stop (drop
 * points after N consecutive saturated ones) is reproduced by
 * running the full ladder and truncating afterwards, which trades a
 * little wasted post-saturation work for order independence.
 */

#ifndef TURNMODEL_EXEC_RUNNER_HPP
#define TURNMODEL_EXEC_RUNNER_HPP

#include <memory>

#include "exec/experiment.hpp"
#include "exec/sweep.hpp"
#include "exec/thread_pool.hpp"
#include "obs/config.hpp"
#include "obs/report.hpp"

namespace turnmodel {

/** Everything a finished experiment produced. */
struct ExperimentResult
{
    std::string experiment;
    /** Effective output-selection policy name (the spec's
     * selection_policy, or the adapter for its enum). */
    std::string selection_policy;
    /** One series per spec algorithm, in spec order; points in rate
     * order, truncated at saturation like the serial sweep. */
    std::vector<SweepSeries> series;
    /** Wall-clock spent executing the sweep grid, seconds. */
    double wall_seconds = 0.0;
    /** Worker threads used. */
    unsigned jobs = 0;
};

/** One observed run: an algorithm at one rate, with its obs data. */
struct ObsRun
{
    std::string algorithm;
    double injection_rate = 0.0;
    SimResult result;
    ObsReport report;
};

/**
 * An observability study: every spec algorithm run once at one
 * injection rate with the observers on, for side-by-side channel
 * heatmaps (e.g. west-first vs xy hotspot asymmetry).
 */
struct ObsStudy
{
    std::string experiment;
    std::string topology;
    std::string pattern;
    double injection_rate = 0.0;
    std::vector<ObsRun> runs;   ///< In spec algorithm order.
};

/**
 * Run one sweep point: a fresh Simulator for @p routing under
 * @p pattern at injection rate @p rate (all other knobs from
 * @p base). The building block of both the serial and the parallel
 * sweep paths.
 */
SweepPoint runSweepPoint(const RoutingAlgorithm &routing,
                         const TrafficPattern &pattern,
                         const SimConfig &base, double rate);

/**
 * Drop the points a serial sweep would not have run: everything
 * after @p stop_after_saturated consecutive saturated points.
 * No-op when @p stop_after_saturated is zero or negative.
 */
void truncateAtSaturation(SweepSeries &series, int stop_after_saturated);

/** Executes ExperimentSpecs over an owned thread pool. */
class Runner
{
  public:
    /** @param jobs Worker threads; 0 = hardware concurrency. */
    explicit Runner(unsigned jobs = 0);

    /** Worker threads in use. */
    unsigned jobs() const { return pool_->size(); }

    /** The underlying pool (shareable with other parallel stages). */
    ThreadPool &pool() { return *pool_; }

    /**
     * Execute the spec: one job per (algorithm, rate) point, series
     * reassembled in spec order regardless of completion order.
     */
    ExperimentResult run(const ExperimentSpec &spec);

    /**
     * Run every spec algorithm once at @p rate with observability
     * @p obs enabled (one job per algorithm, same determinism
     * contract as run()): results plus per-channel counters,
     * time-series samples, and traces for each run.
     */
    ObsStudy runObs(const ExperimentSpec &spec, double rate,
                    const ObsConfig &obs);

  private:
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace turnmodel

#endif // TURNMODEL_EXEC_RUNNER_HPP
