/**
 * @file
 * Structured output for finished experiments. One sink absorbs the
 * emission formats previously hand-rolled per binary: the
 * human-readable table + CSV block, the machine-readable JSON
 * document (BENCH_*.json), and the throughput-ratio summary the
 * figure captions quote. JSON documents carry the wall-clock and
 * job count of the run so result files track the parallel speedup.
 */

#ifndef TURNMODEL_EXEC_RESULT_SINK_HPP
#define TURNMODEL_EXEC_RESULT_SINK_HPP

#include <iosfwd>
#include <string>

#include "exec/runner.hpp"

namespace turnmodel {

/** Writers for ExperimentResults; all stateless. */
class ResultSink
{
  public:
    /** Human-readable table plus CSV block (printSeries). */
    static void writeText(std::ostream &os,
                          const ExperimentResult &result);

    /**
     * JSON document: {"experiment": ..., "jobs": N,
     * "wall_clock_seconds": ..., "series": [...]}. The series bytes
     * are independent of jobs and wall clock, so determinism checks
     * should compare writeSeriesJson output instead.
     */
    static void writeJson(std::ostream &os,
                          const ExperimentResult &result);

    /**
     * Write writeJson to @p path; logs and returns false when the
     * file cannot be opened. Empty path is a silent no-op (returns
     * true) so callers can plumb an optional --json=PATH through.
     */
    static bool writeJsonFile(const std::string &path,
                              const ExperimentResult &result);

    /**
     * The figure captions' summary: each series' maximum sustainable
     * throughput, with the ratio against @p baseline when a series
     * of that name exists.
     */
    static void writeSummary(std::ostream &os,
                             const ExperimentResult &result,
                             const std::string &baseline);

    /**
     * JSON document for an observability study
     * ("turnmodel-obs-study-v3"): the study header plus one entry per
     * run carrying its SimResult, the run-level "trace_dropped"
     * count (v3: events the bounded trace ring overwrote — nonzero
     * means the retained trace is only the tail of the run), and the
     * full ObsReport ("turnmodel-obs-v1" or "turnmodel-obs-v2"
     * depending on the engine, see DESIGN.md).
     */
    static void writeObsJson(std::ostream &os, const ObsStudy &study);

    /** Write writeObsJson to @p path; same contract as writeJsonFile. */
    static bool writeObsJsonFile(const std::string &path,
                                 const ObsStudy &study);

    /**
     * Channel-utilization heatmap rows as CSV: one row per (run,
     * channel), keyed by algorithm, node coordinates, and direction.
     */
    static void writeObsCsv(std::ostream &os, const ObsStudy &study);
};

} // namespace turnmodel

#endif // TURNMODEL_EXEC_RESULT_SINK_HPP
