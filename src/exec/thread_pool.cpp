#include "exec/thread_pool.hpp"

#include "util/logging.hpp"

namespace turnmodel {

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = threads > 0 ? threads : hardwareThreads();
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

bool
ThreadPool::popLocal(unsigned id, std::size_t &index)
{
    WorkerQueue &q = *queues_[id];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.indices.empty())
        return false;
    index = q.indices.front();
    q.indices.pop_front();
    return true;
}

bool
ThreadPool::stealAny(unsigned id, std::size_t &index)
{
    const unsigned n = size();
    for (unsigned offset = 1; offset < n; ++offset) {
        WorkerQueue &victim = *queues_[(id + offset) % n];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.indices.empty())
            continue;
        index = victim.indices.back();
        victim.indices.pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
ThreadPool::runOne(std::size_t index)
{
    try {
        (*body_)(index);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_)
            first_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    --outstanding_;
}

void
ThreadPool::workerLoop(unsigned id)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock,
                      [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        ++active_;
        lock.unlock();

        std::size_t index;
        while (popLocal(id, index) || stealAny(id, index))
            runOne(index);

        lock.lock();
        if (--active_ == 0 && outstanding_ == 0)
            done_cv_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    if (count == 0)
        return;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        TM_ASSERT(outstanding_ == 0 && active_ == 0,
                  "parallelFor is not reentrant");
        // All workers are parked waiting for a new generation, so
        // the deques can be filled without racing a stale stealer.
        const unsigned n = size();
        for (std::size_t i = 0; i < count; ++i) {
            WorkerQueue &q = *queues_[i % n];
            std::lock_guard<std::mutex> qlock(q.mutex);
            q.indices.push_back(i);
        }
        body_ = &body;
        outstanding_ = count;
        first_error_ = nullptr;
        ++generation_;
    }
    work_cv_.notify_all();

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [&] { return outstanding_ == 0 && active_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

WorkerTeam::WorkerTeam(unsigned ranks)
    : ranks_(ranks > 0 ? ranks : 1), barrier_(ranks > 0 ? ranks : 1)
{
    members_.reserve(ranks_ - 1);
    for (unsigned r = 1; r < ranks_; ++r)
        members_.emplace_back([this, r] { memberLoop(r); });
}

WorkerTeam::~WorkerTeam()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread &member : members_)
        member.join();
}

void
WorkerTeam::memberLoop(unsigned rank)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        start_cv_.wait(lock,
                       [&] { return stop_ || epoch_ != seen; });
        if (stop_)
            return;
        seen = epoch_;
        const std::function<void(unsigned)> *job = job_;
        lock.unlock();

        try {
            (*job)(rank);
        } catch (...) {
            std::lock_guard<std::mutex> elock(mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }

        lock.lock();
        if (--running_ == 0)
            done_cv_.notify_all();
    }
}

void
WorkerTeam::run(const std::function<void(unsigned)> &fn)
{
    if (ranks_ == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TM_ASSERT(job_ == nullptr, "WorkerTeam::run is not reentrant");
        job_ = &fn;
        running_ = ranks_ - 1;
        first_error_ = nullptr;
        ++epoch_;
    }
    start_cv_.notify_all();

    try {
        fn(0);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_)
            first_error_ = std::current_exception();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return running_ == 0; });
    job_ = nullptr;
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

} // namespace turnmodel
