/**
 * @file
 * Work-stealing thread pool for the experiment runner layer. Worker
 * threads are persistent; work is submitted as index batches via
 * parallelFor, distributed round-robin over per-worker deques, and
 * idle workers steal from the back of their neighbors' deques until
 * the batch drains. The pool executes tasks in nondeterministic
 * order — callers that need deterministic results must write each
 * task's output to a slot addressed by its index (the runner and the
 * synthesis engine both do).
 */

#ifndef TURNMODEL_EXEC_THREAD_POOL_HPP
#define TURNMODEL_EXEC_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace turnmodel {

/** Fixed-size pool of worker threads with per-worker work deques. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 selects hardwareThreads().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; outstanding batches must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Detected hardware concurrency, at least 1. */
    static unsigned hardwareThreads();

    /**
     * Run body(0) .. body(count - 1) across the workers and block
     * until every call has returned. Tasks must not call back into
     * the same pool (no nesting). The first exception thrown by any
     * task is rethrown here after the batch drains.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Tasks executed by a worker other than the one they were queued
     * on, over the pool's lifetime. Diagnostic (used by tests to
     * observe that stealing happens under unbalanced load).
     */
    std::uint64_t stealCount() const { return steals_.load(); }

  private:
    /** One worker's own task deque; owner pops front, thieves pop
     * back, both under the deque mutex. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::size_t> indices;
    };

    void workerLoop(unsigned id);
    bool popLocal(unsigned id, std::size_t &index);
    bool stealAny(unsigned id, std::size_t &index);
    void runOne(std::size_t index);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> steals_{0};

    /** Guards the batch state below. */
    std::mutex mutex_;
    std::condition_variable work_cv_;   ///< Signals a new batch.
    std::condition_variable done_cv_;   ///< Signals batch completion.
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::uint64_t generation_ = 0;   ///< Bumped per batch.
    std::size_t outstanding_ = 0;    ///< Tasks not yet finished.
    unsigned active_ = 0;            ///< Workers inside the batch.
    std::exception_ptr first_error_;
    bool stop_ = false;
};

} // namespace turnmodel

#endif // TURNMODEL_EXEC_THREAD_POOL_HPP
