/**
 * @file
 * Thread primitives shared by the execution layers.
 *
 * ThreadPool: work-stealing pool for the experiment runner. Worker
 * threads are persistent; work is submitted as index batches via
 * parallelFor, distributed round-robin over per-worker deques, and
 * idle workers steal from the back of their neighbors' deques until
 * the batch drains. The pool executes tasks in nondeterministic
 * order — callers that need deterministic results must write each
 * task's output to a slot addressed by its index (the runner and the
 * synthesis engine both do).
 *
 * WorkerTeam: gang execution for the sharded network engines. Unlike
 * the pool, every run() invocation executes the same function on a
 * fixed set of ranks simultaneously (the caller participates as rank
 * 0), and ranks may synchronize mid-function through barrier() — the
 * primitive a barrier-phased simulation cycle needs and a stealing
 * pool cannot provide (a stolen task parked at a barrier would
 * deadlock its thief).
 */

#ifndef TURNMODEL_EXEC_THREAD_POOL_HPP
#define TURNMODEL_EXEC_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace turnmodel {

/** Fixed-size pool of worker threads with per-worker work deques. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 selects hardwareThreads().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers; outstanding batches must have completed. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Detected hardware concurrency, at least 1. */
    static unsigned hardwareThreads();

    /**
     * Run body(0) .. body(count - 1) across the workers and block
     * until every call has returned. Tasks must not call back into
     * the same pool (no nesting). The first exception thrown by any
     * task is rethrown here after the batch drains.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /**
     * Tasks executed by a worker other than the one they were queued
     * on, over the pool's lifetime. Diagnostic (used by tests to
     * observe that stealing happens under unbalanced load).
     */
    std::uint64_t stealCount() const { return steals_.load(); }

  private:
    /** One worker's own task deque; owner pops front, thieves pop
     * back, both under the deque mutex. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::size_t> indices;
    };

    void workerLoop(unsigned id);
    bool popLocal(unsigned id, std::size_t &index);
    bool stealAny(unsigned id, std::size_t &index);
    void runOne(std::size_t index);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> steals_{0};

    /** Guards the batch state below. */
    std::mutex mutex_;
    std::condition_variable work_cv_;   ///< Signals a new batch.
    std::condition_variable done_cv_;   ///< Signals batch completion.
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::uint64_t generation_ = 0;   ///< Bumped per batch.
    std::size_t outstanding_ = 0;    ///< Tasks not yet finished.
    unsigned active_ = 0;            ///< Workers inside the batch.
    std::exception_ptr first_error_;
    bool stop_ = false;
};

/**
 * Sense-reversing barrier for a fixed party count. arriveAndWait()
 * blocks until all parties of the current phase have arrived, then
 * releases them together; the phase counter flips so the barrier is
 * immediately reusable. Waiters spin briefly and then yield — the
 * simulation phases it separates are microseconds long, so parking
 * on a futex every phase would dominate the cycle.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties) : parties_(parties) {}

    SpinBarrier(const SpinBarrier &) = delete;
    SpinBarrier &operator=(const SpinBarrier &) = delete;

    void arriveAndWait()
    {
        const std::uint64_t phase =
            phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            arrived_.store(0, std::memory_order_relaxed);
            phase_.fetch_add(1, std::memory_order_acq_rel);
        } else {
            unsigned spins = 0;
            while (phase_.load(std::memory_order_acquire) == phase) {
                if (++spins > 64)
                    std::this_thread::yield();
            }
        }
    }

  private:
    const unsigned parties_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> phase_{0};
};

/**
 * A persistent gang of threads executing one function per run() on
 * every rank at once, with an internal barrier for phase-structured
 * work. Ranks 1..ranks-1 live on dedicated threads parked between
 * runs; rank 0 is the calling thread, so a WorkerTeam of one rank
 * spawns nothing and run() degenerates to a plain call.
 */
class WorkerTeam
{
  public:
    /** @param ranks Total ranks including the caller (>= 1). */
    explicit WorkerTeam(unsigned ranks);

    /** Joins the member threads; no run() may be in flight. */
    ~WorkerTeam();

    WorkerTeam(const WorkerTeam &) = delete;
    WorkerTeam &operator=(const WorkerTeam &) = delete;

    unsigned ranks() const { return ranks_; }

    /**
     * Execute fn(0) .. fn(ranks-1) concurrently (fn(0) on the
     * calling thread) and block until every rank has returned.
     * Every rank must execute the same sequence of barrier() calls;
     * fn must not throw past a barrier another rank still waits on
     * (the engine phases this runs assert fatally instead of
     * throwing). The first exception thrown by any rank is rethrown
     * here after the gang drains.
     */
    void run(const std::function<void(unsigned)> &fn);

    /** Rendezvous of all ranks; callable only from inside run(). */
    void barrier() { barrier_.arriveAndWait(); }

  private:
    void memberLoop(unsigned rank);

    const unsigned ranks_;
    SpinBarrier barrier_;
    std::vector<std::thread> members_;

    /** Guards the per-run state below. */
    std::mutex mutex_;
    std::condition_variable start_cv_;   ///< Signals a new run.
    std::condition_variable done_cv_;    ///< Signals gang completion.
    const std::function<void(unsigned)> *job_ = nullptr;
    std::uint64_t epoch_ = 0;   ///< Bumped per run.
    unsigned running_ = 0;      ///< Member ranks not yet finished.
    std::exception_ptr first_error_;
    bool stop_ = false;
};

} // namespace turnmodel

#endif // TURNMODEL_EXEC_THREAD_POOL_HPP
