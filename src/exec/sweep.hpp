/**
 * @file
 * Latency/throughput sweep harness shared by the benchmark binaries:
 * runs one (routing, pattern) combination across a range of
 * injection rates and reports the (throughput, latency) series the
 * paper plots in Figures 13-16, plus the maximum sustainable
 * throughput.
 *
 * runSweep is the serial reference path; the thread-parallel
 * experiment runner (exec/runner.hpp) produces bit-identical series
 * for any job count, because every sweep point is an independent
 * Simulator whose RNG streams are keyed by (seed, node).
 */

#ifndef TURNMODEL_EXEC_SWEEP_HPP
#define TURNMODEL_EXEC_SWEEP_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {

/** One sweep point. */
struct SweepPoint
{
    double injection_rate;   ///< Flits per node per cycle.
    SimResult result;
};

/** A full sweep for one algorithm. */
struct SweepSeries
{
    std::string algorithm;
    std::vector<SweepPoint> points;

    /**
     * Highest measured throughput among the non-saturated points —
     * the paper's "maximum sustainable throughput".
     */
    double maxSustainableThroughput() const;

    /**
     * Emit this series as one JSON object:
     * {"algorithm": ..., "max_sustainable_throughput_flits_per_us":
     * ..., "points": [{...}, ...]}. Machine-readable counterpart of
     * printSeries for BENCH_*.json result files.
     */
    void writeJson(std::ostream &os) const;
};

/** Sweep configuration. */
struct SweepConfig
{
    std::vector<double> injection_rates;
    SimConfig sim;   ///< injection_rate is overwritten per point.

    /** Stop sweeping after this many consecutive saturated points. */
    int stop_after_saturated = 2;

    /** Geometric ladder of rates from lo to hi (inclusive). */
    static std::vector<double> ladder(double lo, double hi, int points);
};

/**
 * Run a sweep of one routing algorithm against one pattern, serially
 * on the calling thread. Thin wrapper over the runner layer's
 * per-point executor; use exec Runner::run for thread-parallel
 * sweeps of whole experiments.
 *
 * @param routing Routing algorithm.
 * @param pattern Traffic pattern.
 * @param config  Sweep configuration.
 */
SweepSeries runSweep(const RoutingAlgorithm &routing,
                     const TrafficPattern &pattern,
                     const SweepConfig &config);

/**
 * Write the fields of one SimResult as JSON members (no surrounding
 * braces), in the fixed order used by every result document:
 * offered/throughput, latencies (with the p99 clamp flag), hops,
 * packets, delivered_ratio, saturated, deadlocked. Callers supply
 * the braces and any extra members (e.g. injection_rate).
 */
void writeSimResultJson(std::ostream &os, const SimResult &result);

/**
 * Print a set of series as a human-readable table followed by a CSV
 * block, tagged with the experiment name.
 */
void printSeries(std::ostream &os, const std::string &experiment,
                 const std::vector<SweepSeries> &series);

/**
 * Write a whole experiment as a JSON document:
 * {"experiment": ..., "series": [<SweepSeries::writeJson>, ...]}.
 */
void writeSeriesJson(std::ostream &os, const std::string &experiment,
                     const std::vector<SweepSeries> &series);

} // namespace turnmodel

#endif // TURNMODEL_EXEC_SWEEP_HPP
