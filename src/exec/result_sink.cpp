#include "exec/result_sink.hpp"

#include <fstream>
#include <iostream>
#include <ostream>

#include "util/json.hpp"
#include "util/logging.hpp"

namespace turnmodel {

void
ResultSink::writeText(std::ostream &os, const ExperimentResult &result)
{
    printSeries(os, result.experiment, result.series);
}

void
ResultSink::writeJson(std::ostream &os, const ExperimentResult &result)
{
    const std::ios::fmtflags flags = os.flags();
    const std::streamsize precision = os.precision();
    os.flags(std::ios::dec);
    os.precision(6);

    os << "{\"experiment\": \"" << jsonEscape(result.experiment)
       << "\", \"jobs\": " << result.jobs
       << ", \"wall_clock_seconds\": ";
    writeJsonNumber(os, result.wall_seconds);
    os << ", \"series\": [";

    os.flags(flags);
    os.precision(precision);
    for (std::size_t i = 0; i < result.series.size(); ++i) {
        if (i > 0)
            os << ", ";
        result.series[i].writeJson(os);
    }
    os << "]}\n";
}

bool
ResultSink::writeJsonFile(const std::string &path,
                          const ExperimentResult &result)
{
    if (path.empty())
        return true;
    std::ofstream out(path);
    if (!out) {
        TM_WARN("cannot write ", path);
        return false;
    }
    writeJson(out, result);
    std::cout << "wrote " << path << '\n';
    return true;
}

void
ResultSink::writeSummary(std::ostream &os, const ExperimentResult &result,
                         const std::string &baseline)
{
    double base = 0.0;
    for (const SweepSeries &s : result.series) {
        if (s.algorithm == baseline)
            base = s.maxSustainableThroughput();
    }
    os << "-- summary (max sustainable throughput";
    if (!baseline.empty())
        os << " vs " << baseline;
    os << ") --\n";
    for (const SweepSeries &s : result.series) {
        const double t = s.maxSustainableThroughput();
        os << "  " << s.algorithm << ": " << t << " flits/us";
        if (base > 0.0)
            os << "  (" << t / base << "x)";
        os << '\n';
    }
}

} // namespace turnmodel
