#include "exec/result_sink.hpp"

#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace turnmodel {

void
ResultSink::writeText(std::ostream &os, const ExperimentResult &result)
{
    printSeries(os, result.experiment, result.series);
}

void
ResultSink::writeJson(std::ostream &os, const ExperimentResult &result)
{
    const std::ios::fmtflags flags = os.flags();
    const std::streamsize precision = os.precision();
    os.flags(std::ios::dec);
    os.precision(6);

    os << "{\"experiment\": \"" << jsonEscape(result.experiment)
       << "\", \"selection_policy\": \""
       << jsonEscape(result.selection_policy)
       << "\", \"jobs\": " << result.jobs
       << ", \"wall_clock_seconds\": ";
    writeJsonNumber(os, result.wall_seconds);
    os << ", \"series\": [";

    os.flags(flags);
    os.precision(precision);
    for (std::size_t i = 0; i < result.series.size(); ++i) {
        if (i > 0)
            os << ", ";
        result.series[i].writeJson(os);
    }
    os << "]}\n";
}

bool
ResultSink::writeJsonFile(const std::string &path,
                          const ExperimentResult &result)
{
    if (path.empty())
        return true;
    std::ofstream out(path);
    if (!out) {
        TM_WARN("cannot write ", path);
        return false;
    }
    writeJson(out, result);
    std::cout << "wrote " << path << '\n';
    return true;
}

void
ResultSink::writeSummary(std::ostream &os, const ExperimentResult &result,
                         const std::string &baseline)
{
    double base = 0.0;
    for (const SweepSeries &s : result.series) {
        if (s.algorithm == baseline)
            base = s.maxSustainableThroughput();
    }
    os << "-- summary (max sustainable throughput";
    if (!baseline.empty())
        os << " vs " << baseline;
    os << ") --\n";
    for (const SweepSeries &s : result.series) {
        const double t = s.maxSustainableThroughput();
        os << "  " << s.algorithm << ": " << t << " flits/us";
        if (base > 0.0)
            os << "  (" << t / base << "x)";
        os << '\n';
    }
}

void
ResultSink::writeObsJson(std::ostream &os, const ObsStudy &study)
{
    const std::ios::fmtflags flags = os.flags(std::ios::dec);
    const std::streamsize precision = os.precision();

    os << "{\"schema\": \"turnmodel-obs-study-v3\", \"experiment\": \""
       << jsonEscape(study.experiment)
       << "\", \"topology\": \"" << jsonEscape(study.topology)
       << "\", \"pattern\": \"" << jsonEscape(study.pattern)
       << "\", \"injection_rate\": ";
    writeJsonNumber(os, study.injection_rate);
    os << ", \"runs\": [";
    for (std::size_t i = 0; i < study.runs.size(); ++i) {
        const ObsRun &run = study.runs[i];
        if (i > 0)
            os << ", ";
        os << "{\"algorithm\": \"" << jsonEscape(run.algorithm)
           << "\", \"injection_rate\": ";
        writeJsonNumber(os, run.injection_rate);
        os << ", \"result\": {";
        writeSimResultJson(os, run.result);
        // Surfaced at run level (v3): a nonzero drop count means the
        // bounded trace ring overwrote events, so the retained trace
        // is the tail of the run, not the whole story — consumers
        // must be able to see that without digging into the report.
        os << "}, \"trace_dropped\": " << run.report.trace_dropped
           << ", \"obs\": ";
        run.report.writeJson(os);
        os << "}";
    }
    os << "]}\n";

    os.flags(flags);
    os.precision(precision);
}

bool
ResultSink::writeObsJsonFile(const std::string &path,
                             const ObsStudy &study)
{
    if (path.empty())
        return true;
    std::ofstream out(path);
    if (!out) {
        TM_WARN("cannot write ", path);
        return false;
    }
    writeObsJson(out, study);
    std::cout << "wrote " << path << '\n';
    return true;
}

void
ResultSink::writeObsCsv(std::ostream &os, const ObsStudy &study)
{
    CsvWriter csv(os);
    csv.header({"experiment", "algorithm", "node", "coords", "dir",
                "flits_forwarded", "busy_cycles", "blocked_cycles",
                "peak_occupancy", "utilization", "trace_dropped"});
    for (const ObsRun &run : study.runs) {
        for (const ChannelUtilRow &row : run.report.channels) {
            std::ostringstream coords;
            for (std::size_t i = 0; i < row.coords.size(); ++i) {
                if (i > 0)
                    coords << ':';
                coords << row.coords[i];
            }
            csv.beginRow()
                .field(study.experiment)
                .field(run.algorithm)
                .field(static_cast<std::uint64_t>(row.node))
                .field(coords.str())
                .field(row.dir)
                .field(row.flits_forwarded)
                .field(row.busy_cycles)
                .field(row.blocked_cycles)
                .field(static_cast<std::uint64_t>(row.peak_occupancy))
                .field(row.utilization)
                .field(run.report.trace_dropped);
            csv.endRow();
        }
    }
}

} // namespace turnmodel
