/**
 * @file
 * Declarative experiment description. One ExperimentSpec fully
 * describes a sweep grid — topology, routing algorithms, traffic
 * pattern, injection-rate ladder, fidelity, seed — the shape shared
 * by every result in the paper (Figures 13-16, the adaptiveness
 * tables, the synthesis ranking sweeps). Binaries build a spec and
 * hand it to the Runner (exec/runner.hpp) instead of plumbing the
 * same dozen arguments through per-figure boilerplate.
 */

#ifndef TURNMODEL_EXEC_EXPERIMENT_HPP
#define TURNMODEL_EXEC_EXPERIMENT_HPP

#include <functional>
#include <string>
#include <vector>

#include "core/routing.hpp"
#include "exec/sweep.hpp"
#include "sim/config.hpp"
#include "topology/topology.hpp"
#include "traffic/pattern.hpp"

namespace turnmodel {

/**
 * Constructs the routing algorithm for one named series. Invoked on
 * the runner's thread once per (algorithm, rate) job so that each
 * job owns a private instance — routing objects with lazy caches
 * (turn-table reachability) are not thread safe to share.
 */
using RoutingFactory =
    std::function<RoutingPtr(const std::string &name,
                             const Topology &topo)>;

/** Constructs the traffic pattern; one shared const instance. */
using PatternFactory =
    std::function<PatternPtr(const std::string &name,
                             const Topology &topo)>;

/** A full sweep-grid experiment, declaratively. */
struct ExperimentSpec
{
    /** Experiment title, e.g. "figure-13: 16x16 mesh / uniform". */
    std::string name;

    /** Topology; must outlive the spec. */
    const Topology *topology = nullptr;

    /** Traffic pattern name (makePattern), e.g. "uniform". */
    std::string pattern = "uniform";

    /** Routing algorithm names, one sweep series each, in order. */
    std::vector<std::string> algorithms;

    /**
     * Optional reference algorithm for the throughput-ratio summary
     * (the figure captions' "N times the throughput of ..."). Empty
     * disables the summary.
     */
    std::string baseline;

    /** Injection rates, flits per node per cycle (SweepConfig::ladder
     * builds the usual geometric ladder). */
    std::vector<double> injection_rates;

    /** Base simulation configuration; injection_rate is overwritten
     * per point. Carries fidelity (warmup/measure) and the seed. */
    SimConfig sim;

    /** Per-series early-stop: points after this many consecutive
     * saturated ones are dropped (matching the serial sweep). */
    int stop_after_saturated = 2;

    /** Override how algorithm names become routing objects; defaults
     * to makeRouting. Lets studies sweep algorithms the factory
     * cannot name (e.g. turn-table routings on faulty topologies). */
    RoutingFactory make_routing;

    /** Override pattern construction; defaults to makePattern. */
    PatternFactory make_pattern;
};

} // namespace turnmodel

#endif // TURNMODEL_EXEC_EXPERIMENT_HPP
