#include "exec/runner.hpp"

#include <chrono>

#include "core/routing/factory.hpp"
#include "util/logging.hpp"

namespace turnmodel {

SweepPoint
runSweepPoint(const RoutingAlgorithm &routing,
              const TrafficPattern &pattern, const SimConfig &base,
              double rate)
{
    SimConfig sim = base;
    sim.injection_rate = rate;
    Simulator simulator(routing, pattern, sim);
    SweepPoint point;
    point.injection_rate = rate;
    point.result = simulator.run();
    return point;
}

void
truncateAtSaturation(SweepSeries &series, int stop_after_saturated)
{
    if (stop_after_saturated <= 0)
        return;
    int streak = 0;
    for (std::size_t i = 0; i < series.points.size(); ++i) {
        streak = series.points[i].result.saturated ? streak + 1 : 0;
        if (streak >= stop_after_saturated) {
            series.points.resize(i + 1);
            return;
        }
    }
}

Runner::Runner(unsigned jobs) : pool_(std::make_unique<ThreadPool>(jobs))
{
}

ExperimentResult
Runner::run(const ExperimentSpec &spec)
{
    TM_ASSERT(spec.topology != nullptr, "spec needs a topology");
    TM_ASSERT(!spec.algorithms.empty(), "spec needs algorithms");
    TM_ASSERT(!spec.injection_rates.empty(), "spec needs rates");

    const Topology &topo = *spec.topology;
    const RoutingFactory make_routing = spec.make_routing
        ? spec.make_routing
        : [](const std::string &name, const Topology &t) {
              return makeRouting(name, t);
          };
    const PatternPtr pattern = spec.make_pattern
        ? spec.make_pattern(spec.pattern, topo)
        : makePattern(spec.pattern, topo);

    const auto start = std::chrono::steady_clock::now();

    // One private routing instance per (algorithm, rate) job: the
    // lazy reachability caches inside turn-table routings are not
    // thread safe, and a fresh instance per job keeps every sweep
    // point fully independent. Construction is cheap (the caches
    // fill lazily during simulation).
    const std::size_t num_series = spec.algorithms.size();
    const std::size_t num_rates = spec.injection_rates.size();
    std::vector<RoutingPtr> routings(num_series * num_rates);
    for (std::size_t a = 0; a < num_series; ++a) {
        for (std::size_t r = 0; r < num_rates; ++r) {
            routings[a * num_rates + r] =
                make_routing(spec.algorithms[a], topo);
            TM_ASSERT(routings[a * num_rates + r] != nullptr,
                      "no routing for '", spec.algorithms[a], "'");
        }
    }

    // Sweep points already saturate the pool's workers; nesting a
    // shard team inside each would oversubscribe, so the engines run
    // serially per point whenever the pool itself is parallel.
    SimConfig sim = spec.sim;
    if (pool_->size() > 1)
        sim.sim_threads = 1;

    std::vector<SweepPoint> points(num_series * num_rates);
    pool_->parallelFor(points.size(), [&](std::size_t job) {
        const double rate = spec.injection_rates[job % num_rates];
        points[job] =
            runSweepPoint(*routings[job], *pattern, sim, rate);
    });

    ExperimentResult result;
    result.experiment = spec.name;
    result.selection_policy = spec.sim.selection_policy.empty()
        ? toString(spec.sim.output_selection)
        : spec.sim.selection_policy;
    result.jobs = pool_->size();
    result.series.resize(num_series);
    for (std::size_t a = 0; a < num_series; ++a) {
        SweepSeries &series = result.series[a];
        series.algorithm = routings[a * num_rates]->name();
        series.points.assign(points.begin() + a * num_rates,
                             points.begin() + (a + 1) * num_rates);
        truncateAtSaturation(series, spec.stop_after_saturated);
    }

    result.wall_seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    return result;
}

ObsStudy
Runner::runObs(const ExperimentSpec &spec, double rate,
               const ObsConfig &obs)
{
    TM_ASSERT(spec.topology != nullptr, "spec needs a topology");
    TM_ASSERT(!spec.algorithms.empty(), "spec needs algorithms");

    const Topology &topo = *spec.topology;
    const RoutingFactory make_routing = spec.make_routing
        ? spec.make_routing
        : [](const std::string &name, const Topology &t) {
              return makeRouting(name, t);
          };
    const PatternPtr pattern = spec.make_pattern
        ? spec.make_pattern(spec.pattern, topo)
        : makePattern(spec.pattern, topo);

    // Private routing instance per job, as in run(): turn-table
    // reachability caches are not thread safe.
    const std::size_t num_runs = spec.algorithms.size();
    std::vector<RoutingPtr> routings(num_runs);
    for (std::size_t a = 0; a < num_runs; ++a) {
        routings[a] = make_routing(spec.algorithms[a], topo);
        TM_ASSERT(routings[a] != nullptr,
                  "no routing for '", spec.algorithms[a], "'");
    }

    ObsStudy study;
    study.experiment = spec.name;
    study.topology = topo.name();
    study.pattern = spec.pattern;
    study.injection_rate = rate;
    study.runs.resize(num_runs);

    pool_->parallelFor(num_runs, [&](std::size_t job) {
        SimConfig sim = spec.sim;
        sim.injection_rate = rate;
        sim.obs = obs;
        if (pool_->size() > 1)
            sim.sim_threads = 1;   // One engine per worker already.
        Simulator simulator(*routings[job], *pattern, sim);
        ObsRun &run = study.runs[job];
        run.algorithm = routings[job]->name();
        run.injection_rate = rate;
        run.result = simulator.run();
        run.report = simulator.obsReport();
    });
    return study;
}

} // namespace turnmodel
