/**
 * @file
 * n-dimensional mesh topology: k_0 x k_1 x ... x k_{n-1} nodes, with
 * neighbors differing by one in exactly one coordinate and no
 * wraparound channels.
 */

#ifndef TURNMODEL_TOPOLOGY_MESH_HPP
#define TURNMODEL_TOPOLOGY_MESH_HPP

#include "topology/topology.hpp"

namespace turnmodel {

/** An n-dimensional mesh without wraparound channels. */
class NDMesh : public Topology
{
  public:
    explicit NDMesh(Shape shape);

    /** Convenience constructor for a 2D m x n mesh. */
    static NDMesh mesh2D(int m, int n);

    std::optional<NodeId> neighbor(NodeId node, Direction dir)
        const override;
    bool isWraparound(NodeId node, Direction dir) const override;
    std::string name() const override;
    int distance(NodeId a, NodeId b) const override;
    int diameter() const override;
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_MESH_HPP
