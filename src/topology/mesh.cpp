#include "topology/mesh.hpp"

#include <cmath>
#include <cstdlib>

#include "util/logging.hpp"

namespace turnmodel {

NDMesh::NDMesh(Shape shape)
    : Topology(std::move(shape))
{
}

NDMesh
NDMesh::mesh2D(int m, int n)
{
    return NDMesh(Shape{m, n});
}

std::optional<NodeId>
NDMesh::neighbor(NodeId node, Direction dir) const
{
    Coords c = coords(node);
    const int next = c[dir.dim] + dir.delta();
    if (next < 0 || next >= radix(dir.dim))
        return std::nullopt;
    c[dir.dim] = next;
    return this->node(c);
}

bool
NDMesh::isWraparound(NodeId, Direction) const
{
    return false;
}

std::string
NDMesh::name() const
{
    std::string out;
    for (std::size_t d = 0; d < shape_.size(); ++d) {
        if (d > 0)
            out += 'x';
        out += std::to_string(shape_[d]);
    }
    return out + " mesh";
}

int
NDMesh::distance(NodeId a, NodeId b) const
{
    const Coords ca = coords(a);
    const Coords cb = coords(b);
    int dist = 0;
    for (std::size_t d = 0; d < ca.size(); ++d)
        dist += std::abs(ca[d] - cb[d]);
    return dist;
}

int
NDMesh::diameter() const
{
    int diam = 0;
    for (int k : shape_)
        diam += k - 1;
    return diam;
}

} // namespace turnmodel
