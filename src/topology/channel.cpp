#include "topology/channel.hpp"

#include "util/logging.hpp"

namespace turnmodel {

ChannelSpace::ChannelSpace(const Topology &topo)
    : topo_(topo),
      bound_(topo.numNodes() * static_cast<ChannelId>(topo.numDirs()))
{
    dest_.assign(bound_, 0);
    exists_.assign(bound_, false);
    for (NodeId v = 0; v < topo.numNodes(); ++v) {
        for (Direction d : allDirections(topo.numDims())) {
            const auto nb = topo.neighbor(v, d);
            if (!nb)
                continue;
            const ChannelId ch = id(v, d);
            dest_[ch] = *nb;
            exists_[ch] = true;
            existing_.push_back(ch);
        }
    }
}

ChannelId
ChannelSpace::id(NodeId src, Direction dir) const
{
    return src * static_cast<ChannelId>(topo_.numDirs()) + dir.id();
}

NodeId
ChannelSpace::source(ChannelId ch) const
{
    return ch / static_cast<ChannelId>(topo_.numDirs());
}

Direction
ChannelSpace::direction(ChannelId ch) const
{
    return Direction::fromId(
        static_cast<DirId>(ch % static_cast<ChannelId>(topo_.numDirs())));
}

NodeId
ChannelSpace::destination(ChannelId ch) const
{
    TM_ASSERT(exists(ch), "channel ", ch, " does not exist");
    return dest_[ch];
}

bool
ChannelSpace::exists(ChannelId ch) const
{
    return ch < bound_ && exists_[ch];
}

bool
ChannelSpace::isWraparound(ChannelId ch) const
{
    return topo_.isWraparound(source(ch), direction(ch));
}

std::string
ChannelSpace::toString(ChannelId ch) const
{
    return coordsToString(topo_.coords(source(ch))) + " -> "
        + directionName(direction(ch))
        + (isWraparound(ch) ? " (wrap)" : "");
}

} // namespace turnmodel
