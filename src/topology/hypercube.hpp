/**
 * @file
 * Binary n-cube (hypercube) topology: the special case of both the
 * n-dimensional mesh (all k_i = 2) and the k-ary n-cube (k = 2).
 * Node ids coincide with the node's binary address, so routing
 * algorithms can work directly on bit patterns as in the paper's
 * p-cube formulation.
 */

#ifndef TURNMODEL_TOPOLOGY_HYPERCUBE_HPP
#define TURNMODEL_TOPOLOGY_HYPERCUBE_HPP

#include "topology/mesh.hpp"

namespace turnmodel {

/** A binary n-cube. */
class Hypercube : public NDMesh
{
  public:
    /** @param n Number of dimensions (2^n nodes). */
    explicit Hypercube(int n);

    std::string name() const override;

    /**
     * The address of a node is its id; bit i of the address is the
     * node's coordinate in dimension i.
     */
    std::uint64_t address(NodeId node) const { return node; }

    /** The neighbor across dimension i. */
    NodeId neighborAcross(NodeId node, int dim) const;

    /** Hamming distance between two nodes (= hop distance). */
    int hammingDistance(NodeId a, NodeId b) const;
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_HYPERCUBE_HPP
