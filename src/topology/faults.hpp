/**
 * @file
 * Channel-fault injection. The paper argues (Sections 1, 3.3, 7)
 * that adaptiveness — and especially nonminimal routing — buys fault
 * tolerance: alternative paths route packets around broken channels.
 * FaultyTopology presents a base topology minus a set of failed
 * unidirectional channels; turn-table routing's reachability oracle
 * then steers around the failures automatically, and the experiment
 * in bench/ablation_faults measures how much connectivity each
 * algorithm retains.
 */

#ifndef TURNMODEL_TOPOLOGY_FAULTS_HPP
#define TURNMODEL_TOPOLOGY_FAULTS_HPP

#include <unordered_set>

#include "topology/channel.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace turnmodel {

/** A base topology with some unidirectional channels marked failed. */
class FaultyTopology : public Topology
{
  public:
    /**
     * @param base   Underlying topology; must outlive this object.
     * @param faults Failed channels, as (source, direction) channel
     *               ids of the base topology's channel space.
     */
    FaultyTopology(const Topology &base,
                   std::unordered_set<ChannelId> faults);

    /**
     * Fail @p count distinct channels drawn uniformly at random.
     * Failures are unidirectional, matching a broken driver rather
     * than a cut wire; pass pairs explicitly for bidirectional cuts.
     */
    static FaultyTopology withRandomFaults(const Topology &base,
                                           std::size_t count, Rng &rng);

    int numDims() const override { return base_.numDims(); }
    int radix(int dim) const override { return base_.radix(dim); }
    std::optional<NodeId> neighbor(NodeId node, Direction dir)
        const override;
    bool isWraparound(NodeId node, Direction dir) const override;
    std::string name() const override;
    /**
     * Distance of the *healthy* topology — a lower bound once
     * channels fail. Minimal routing on a faulty network is
     * therefore best-effort; the fault-tolerance results use
     * nonminimal routing, which never consults distances.
     */
    int distance(NodeId a, NodeId b) const override;
    int diameter() const override { return base_.diameter(); }
    DirId physicalChannelGroup(DirId dir) const override;
    bool hasSharedPhysicalChannels() const override;

    const Topology &base() const { return base_; }
    const std::unordered_set<ChannelId> &faults() const
    {
        return faults_;
    }
    bool isFaulty(NodeId node, Direction dir) const;

  private:
    const Topology &base_;
    ChannelSpace base_channels_;
    std::unordered_set<ChannelId> faults_;
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_FAULTS_HPP
