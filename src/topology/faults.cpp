#include "topology/faults.hpp"

#include "util/logging.hpp"

namespace turnmodel {

FaultyTopology::FaultyTopology(const Topology &base,
                               std::unordered_set<ChannelId> faults)
    : Topology(base.shape()), base_(base), base_channels_(base),
      faults_(std::move(faults))
{
    for (ChannelId ch : faults_) {
        TM_ASSERT(base_channels_.exists(ch),
                  "fault names a channel the base topology lacks");
    }
}

FaultyTopology
FaultyTopology::withRandomFaults(const Topology &base, std::size_t count,
                                 Rng &rng)
{
    const ChannelSpace space(base);
    TM_ASSERT(count <= space.count(), "more faults than channels");
    std::unordered_set<ChannelId> faults;
    while (faults.size() < count) {
        const ChannelId ch =
            space.channels()[rng.nextBounded(space.count())];
        faults.insert(ch);
    }
    return FaultyTopology(base, std::move(faults));
}

bool
FaultyTopology::isFaulty(NodeId node, Direction dir) const
{
    return faults_.count(base_channels_.id(node, dir)) > 0;
}

std::optional<NodeId>
FaultyTopology::neighbor(NodeId node, Direction dir) const
{
    if (isFaulty(node, dir))
        return std::nullopt;
    return base_.neighbor(node, dir);
}

bool
FaultyTopology::isWraparound(NodeId node, Direction dir) const
{
    return base_.isWraparound(node, dir);
}

std::string
FaultyTopology::name() const
{
    return base_.name() + " (" + std::to_string(faults_.size())
        + " faulty channels)";
}

int
FaultyTopology::distance(NodeId a, NodeId b) const
{
    return base_.distance(a, b);
}

DirId
FaultyTopology::physicalChannelGroup(DirId dir) const
{
    return base_.physicalChannelGroup(dir);
}

bool
FaultyTopology::hasSharedPhysicalChannels() const
{
    return base_.hasSharedPhysicalChannels();
}

} // namespace turnmodel
