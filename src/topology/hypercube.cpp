#include "topology/hypercube.hpp"

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace turnmodel {

Hypercube::Hypercube(int n)
    : NDMesh(Shape(static_cast<std::size_t>(n), 2))
{
    TM_ASSERT(n >= 1 && n <= 20, "hypercube dimension out of range");
}

std::string
Hypercube::name() const
{
    return "binary " + std::to_string(numDims()) + "-cube";
}

NodeId
Hypercube::neighborAcross(NodeId node, int dim) const
{
    return static_cast<NodeId>(flipBit(node, dim));
}

int
Hypercube::hammingDistance(NodeId a, NodeId b) const
{
    return popcount(static_cast<std::uint64_t>(a) ^
                    static_cast<std::uint64_t>(b));
}

} // namespace turnmodel
