#include "topology/coordinates.hpp"

#include "util/logging.hpp"

namespace turnmodel {

std::uint64_t
shapeSize(const Shape &shape)
{
    std::uint64_t n = 1;
    for (int k : shape) {
        TM_ASSERT(k >= 2, "each dimension needs at least two nodes");
        n *= static_cast<std::uint64_t>(k);
    }
    return n;
}

Coords
coordsOf(NodeId node, const Shape &shape)
{
    Coords coords(shape.size());
    std::uint64_t rest = node;
    for (std::size_t d = 0; d < shape.size(); ++d) {
        coords[d] = static_cast<int>(rest % static_cast<std::uint64_t>(shape[d]));
        rest /= static_cast<std::uint64_t>(shape[d]);
    }
    TM_ASSERT(rest == 0, "node id ", node, " outside of shape");
    return coords;
}

NodeId
nodeAt(const Coords &coords, const Shape &shape)
{
    TM_ASSERT(coords.size() == shape.size(), "coordinate arity mismatch");
    std::uint64_t id = 0;
    for (std::size_t d = shape.size(); d-- > 0;) {
        TM_ASSERT(coords[d] >= 0 && coords[d] < shape[d],
                  "coordinate out of bounds in dim ", d);
        id = id * static_cast<std::uint64_t>(shape[d])
            + static_cast<std::uint64_t>(coords[d]);
    }
    return static_cast<NodeId>(id);
}

bool
inBounds(const Coords &coords, const Shape &shape)
{
    if (coords.size() != shape.size())
        return false;
    for (std::size_t d = 0; d < shape.size(); ++d) {
        if (coords[d] < 0 || coords[d] >= shape[d])
            return false;
    }
    return true;
}

std::string
coordsToString(const Coords &coords)
{
    std::string out = "(";
    for (std::size_t d = 0; d < coords.size(); ++d) {
        if (d > 0)
            out += ',';
        out += std::to_string(coords[d]);
    }
    out += ')';
    return out;
}

} // namespace turnmodel
