#include "topology/oct.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hpp"

namespace turnmodel {

OctMesh::OctMesh(int m, int n)
    : Topology(Shape{m, n})
{
}

int
OctMesh::radix(int dim) const
{
    if (dim == 0)
        return shape_[0];
    if (dim == 1)
        return shape_[1];
    // Diagonal axes span the shorter side.
    return std::min(shape_[0], shape_[1]);
}

std::pair<int, int>
OctMesh::gridDelta(Direction dir)
{
    const int sign = dir.delta();
    switch (dir.dim) {
      case 0:  return {sign, 0};
      case 1:  return {0, sign};
      case 2:  return {sign, sign};
      default: return {sign, -sign};
    }
}

std::optional<NodeId>
OctMesh::neighbor(NodeId node, Direction dir) const
{
    Coords c = coords(node);
    const auto [dx, dy] = gridDelta(dir);
    const int x = c[0] + dx;
    const int y = c[1] + dy;
    if (x < 0 || x >= shape_[0] || y < 0 || y >= shape_[1])
        return std::nullopt;
    return this->node({x, y});
}

bool
OctMesh::isWraparound(NodeId, Direction) const
{
    return false;
}

std::string
OctMesh::name() const
{
    return std::to_string(shape_[0]) + "x" + std::to_string(shape_[1])
        + " octagonal mesh";
}

int
OctMesh::distance(NodeId a, NodeId b) const
{
    const Coords ca = coords(a);
    const Coords cb = coords(b);
    return std::max(std::abs(cb[0] - ca[0]), std::abs(cb[1] - ca[1]));
}

int
OctMesh::diameter() const
{
    return std::max(shape_[0], shape_[1]) - 1;
}

} // namespace turnmodel
