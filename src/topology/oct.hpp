/**
 * @file
 * Octagonal mesh — the second topology on the paper's future-work
 * list (Section 7). A 2D grid in which every interior node also
 * connects to its four diagonal neighbors, giving eight channels per
 * node along four *axes*:
 *
 *   axis 0 (x):  +x = (+1,  0)    -x = (-1,  0)
 *   axis 1 (y):  +y = ( 0, +1)    -y = ( 0, -1)
 *   axis 2 (u):  +u = (+1, +1)    -u = (-1, -1)
 *   axis 3 (v):  +v = (+1, -1)    -v = (-1, +1)
 *
 * Distance is the Chebyshev metric (diagonals cover both coordinates
 * at once). As with the hexagonal mesh, no closed loop can be formed
 * from positive directions alone — every positive direction has a
 * non-negative coordinate sum and +x/+u/+v strictly increase x — so
 * negative-first generalizes, and the channel dependency graph
 * checker verifies deadlock freedom exactly.
 */

#ifndef TURNMODEL_TOPOLOGY_OCT_HPP
#define TURNMODEL_TOPOLOGY_OCT_HPP

#include "topology/topology.hpp"

namespace turnmodel {

/** A 2D mesh with diagonal channels (eight-neighbor connectivity). */
class OctMesh : public Topology
{
  public:
    /**
     * @param m Nodes along x.
     * @param n Nodes along y.
     */
    OctMesh(int m, int n);

    /** Four axes, each a direction pair. */
    int numDims() const override { return 4; }
    int radix(int dim) const override;
    std::optional<NodeId> neighbor(NodeId node, Direction dir)
        const override;
    bool isWraparound(NodeId node, Direction dir) const override;
    std::string name() const override;
    /** Chebyshev distance max(|dx|, |dy|). */
    int distance(NodeId a, NodeId b) const override;
    int diameter() const override;

    /** Coordinate delta of a direction, as (dx, dy). */
    static std::pair<int, int> gridDelta(Direction dir);
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_OCT_HPP
