/**
 * @file
 * Node coordinates in an n-dimensional network and conversions to and
 * from linear node ids. Linearization is row-major with dimension 0
 * varying fastest, i.e. id = x0 + k0*(x1 + k1*(x2 + ...)).
 */

#ifndef TURNMODEL_TOPOLOGY_COORDINATES_HPP
#define TURNMODEL_TOPOLOGY_COORDINATES_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace turnmodel {

/** Linear node identifier. */
using NodeId = std::uint32_t;

/** Per-dimension coordinates of a node. */
using Coords = std::vector<int>;

/** Radix (number of nodes) of each dimension. */
using Shape = std::vector<int>;

/** Total node count of a shape. */
std::uint64_t shapeSize(const Shape &shape);

/** Convert a linear node id to coordinates within @p shape. */
Coords coordsOf(NodeId node, const Shape &shape);

/** Convert coordinates to a linear node id within @p shape. */
NodeId nodeAt(const Coords &coords, const Shape &shape);

/** True when every coordinate is within [0, k_i). */
bool inBounds(const Coords &coords, const Shape &shape);

/** "(x0,x1,...)" rendering for messages and traces. */
std::string coordsToString(const Coords &coords);

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_COORDINATES_HPP
