/**
 * @file
 * Abstract direct-network topology: a set of nodes addressed by
 * n-dimensional coordinates, connected by pairs of unidirectional
 * channels. Concrete subclasses implement n-dimensional meshes,
 * k-ary n-cubes (tori), and hypercubes.
 */

#ifndef TURNMODEL_TOPOLOGY_TOPOLOGY_HPP
#define TURNMODEL_TOPOLOGY_TOPOLOGY_HPP

#include <optional>
#include <string>
#include <vector>

#include "topology/coordinates.hpp"
#include "topology/direction.hpp"

namespace turnmodel {

/**
 * Base class for direct-network topologies.
 *
 * Every topology embeds its nodes in an n-dimensional grid; subclasses
 * only differ in which hops exist (mesh edges stop at the boundary,
 * torus edges wrap around). The simulator, the routing algorithms and
 * the deadlock checker all see the network through this interface.
 */
class Topology
{
  public:
    explicit Topology(Shape shape);
    virtual ~Topology() = default;

    /**
     * Number of routing dimensions n. Virtual-channel topologies
     * report their *virtual* dimension count here (each set of
     * virtual channels in a physical direction is a distinct virtual
     * direction, Step 1 of the turn model); plain topologies report
     * the physical count.
     */
    virtual int numDims() const
    {
        return static_cast<int>(shape_.size());
    }

    /** Radix k_i of (routing) dimension i. */
    virtual int radix(int dim) const
    {
        return shape_[static_cast<std::size_t>(dim)];
    }

    /** Physical shape vector (k_0, ..., k_{n-1}). */
    const Shape &shape() const { return shape_; }

    /**
     * Physical channel class of an outgoing direction: directions
     * mapping to the same value at a node share one physical wire
     * and hence its bandwidth. Identity for plain topologies.
     */
    virtual DirId physicalChannelGroup(DirId dir) const { return dir; }

    /** Whether any two directions share a physical channel. */
    virtual bool hasSharedPhysicalChannels() const { return false; }

    /** Total node count. */
    NodeId numNodes() const { return num_nodes_; }

    /** Number of direction ids, 2n. */
    int numDirs() const { return 2 * numDims(); }

    /** Coordinates of a node. */
    Coords coords(NodeId node) const { return coordsOf(node, shape_); }

    /** Node at the given coordinates. */
    NodeId node(const Coords &coords) const { return nodeAt(coords, shape_); }

    /**
     * The neighbor reached by leaving @p node in direction @p dir, or
     * nullopt when no channel exists that way (mesh boundary).
     */
    virtual std::optional<NodeId> neighbor(NodeId node, Direction dir)
        const = 0;

    /**
     * True when the hop out of @p node in direction @p dir uses a
     * wraparound channel (always false for meshes).
     */
    virtual bool isWraparound(NodeId node, Direction dir) const = 0;

    /** Short human-readable description, e.g. "16x16 mesh". */
    virtual std::string name() const = 0;

    /**
     * Minimal hop distance between two nodes under this topology's
     * channels (wraparound counts for tori).
     */
    virtual int distance(NodeId a, NodeId b) const = 0;

    /** Hops of the longest shortest path in the network. */
    virtual int diameter() const = 0;

    /** Directions with an outgoing channel at @p node. */
    std::vector<Direction> outgoingDirections(NodeId node) const;

    /**
     * Directions d such that the channel arriving at @p node carrying
     * packets that travel in direction d exists (i.e. the reverse hop
     * out of @p node along d.opposite() exists).
     */
    std::vector<Direction> incomingDirections(NodeId node) const;

    /** Total number of unidirectional network channels. */
    std::size_t countChannels() const;

  protected:
    Shape shape_;
    NodeId num_nodes_;
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_TOPOLOGY_HPP
