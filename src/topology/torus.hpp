/**
 * @file
 * k-ary n-cube (torus) topology: an n-dimensional mesh whose edges
 * wrap around in every dimension, giving the network node symmetry.
 */

#ifndef TURNMODEL_TOPOLOGY_TORUS_HPP
#define TURNMODEL_TOPOLOGY_TORUS_HPP

#include "topology/topology.hpp"

namespace turnmodel {

/**
 * A k-ary n-cube. All dimensions share radix k; modular coordinate
 * arithmetic adds wraparound channels at the array edges. For k == 2
 * the wraparound channel would duplicate the mesh channel, so no
 * wraparound hop is reported (the topology degenerates to a
 * hypercube, in which every node has exactly n neighbors).
 */
class KAryNCube : public Topology
{
  public:
    /**
     * @param k Radix of every dimension (k >= 2).
     * @param n Number of dimensions.
     */
    KAryNCube(int k, int n);

    int k() const { return radix(0); }

    std::optional<NodeId> neighbor(NodeId node, Direction dir)
        const override;
    bool isWraparound(NodeId node, Direction dir) const override;
    std::string name() const override;
    int distance(NodeId a, NodeId b) const override;
    int diameter() const override;
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_TORUS_HPP
