/**
 * @file
 * Directions of travel in an n-dimensional network.
 *
 * A direction is (dimension, sign). The paper's 2D vocabulary maps to
 * dimension 0 = x with -x = west / +x = east, and dimension 1 = y with
 * -y = south / +y = north. Directions pack into a dense id
 * (2*dim + sign bit) used to index router ports and channels.
 */

#ifndef TURNMODEL_TOPOLOGY_DIRECTION_HPP
#define TURNMODEL_TOPOLOGY_DIRECTION_HPP

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace turnmodel {

/** Dense direction identifier: 2*dim for negative, 2*dim+1 for positive. */
using DirId = std::uint8_t;

/** A direction of packet travel along one dimension of the network. */
struct Direction
{
    std::uint8_t dim = 0;   ///< Dimension index.
    bool positive = false;  ///< True for +dim travel, false for -dim.

    constexpr Direction() = default;
    constexpr Direction(std::uint8_t d, bool pos) : dim(d), positive(pos) {}

    /** Dense id in [0, 2n). */
    constexpr DirId id() const
    {
        return static_cast<DirId>(2 * dim + (positive ? 1 : 0));
    }

    /** Inverse mapping of id(). */
    static constexpr Direction
    fromId(DirId id)
    {
        return Direction(static_cast<std::uint8_t>(id / 2), (id % 2) != 0);
    }

    /** The 180-degree reverse of this direction. */
    constexpr Direction opposite() const
    {
        return Direction(dim, !positive);
    }

    /** Coordinate delta along this direction's dimension (+1 or -1). */
    constexpr int delta() const { return positive ? 1 : -1; }

    friend constexpr auto operator<=>(const Direction &,
                                      const Direction &) = default;
};

/** Named 2D directions matching the paper's terminology. */
namespace dir2d {
inline constexpr Direction West{0, false};
inline constexpr Direction East{0, true};
inline constexpr Direction South{1, false};
inline constexpr Direction North{1, true};
} // namespace dir2d

/** All 2n directions of an n-dimensional network, in id order. */
std::vector<Direction> allDirections(int num_dims);

/**
 * Human-readable name: "west"/"east"/"south"/"north" for the first two
 * dimensions, "-d2"/"+d2" style beyond.
 */
std::string directionName(Direction d);

/**
 * Inverse of directionName: parse "west"/"east"/"south"/"north" or
 * the "-d2"/"+d2" forms. Returns nullopt for unknown names or
 * dimensions outside [0, num_dims).
 */
std::optional<Direction> directionFromName(const std::string &name,
                                           int num_dims);

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_DIRECTION_HPP
