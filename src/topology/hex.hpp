/**
 * @file
 * Hexagonal mesh — the first topology on the paper's future-work
 * list ("another obvious extension of our work is to apply the turn
 * model to other topologies, such as hexagonal, octagonal, and
 * cube-connected cycle networks", Section 7).
 *
 * Nodes sit on a rhombus of axial coordinates (q, r); each interior
 * node has six neighbors, reached along three *axes*, each with a
 * positive and a negative direction:
 *
 *   axis 0 (q): +q = (+1,  0)     -q = (-1,  0)
 *   axis 1 (r): +r = ( 0, +1)     -r = ( 0, -1)
 *   axis 2 (s): +s = (+1, -1)     -s = (-1, +1)
 *
 * Presented through the Topology interface as a three-"dimension"
 * network, every turn-model tool works unchanged: turns are pairs of
 * axes, the channel dependency graph checker decides deadlock
 * freedom exactly (the abstract-cycle catalog of orthogonal meshes
 * does not apply — hexagonal cycles can close in three turns), and
 * turn-table routing with the reachability oracle yields complete
 * routing functions. Negative-first generalizes: no closed loop can
 * be formed from positive directions alone (their coordinate sums
 * cannot cancel), so prohibiting positive-to-negative turns breaks
 * every cycle.
 */

#ifndef TURNMODEL_TOPOLOGY_HEX_HPP
#define TURNMODEL_TOPOLOGY_HEX_HPP

#include "topology/topology.hpp"

namespace turnmodel {

/** A rhombus-shaped hexagonal mesh in axial coordinates. */
class HexMesh : public Topology
{
  public:
    /**
     * @param kq Nodes along the q axis.
     * @param kr Nodes along the r axis.
     */
    HexMesh(int kq, int kr);

    /** Three axes, each a direction pair. */
    int numDims() const override { return 3; }
    int radix(int dim) const override;
    std::optional<NodeId> neighbor(NodeId node, Direction dir)
        const override;
    bool isWraparound(NodeId node, Direction dir) const override;
    std::string name() const override;
    /** Hex (axial) distance: (|dq| + |dr| + |dq + dr|) / 2. */
    int distance(NodeId a, NodeId b) const override;
    int diameter() const override;

    /** Coordinate delta of a direction, as (dq, dr). */
    static std::pair<int, int> axialDelta(Direction dir);
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_HEX_HPP
