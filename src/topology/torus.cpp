#include "topology/torus.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hpp"

namespace turnmodel {

namespace {

Shape
uniformShape(int k, int n)
{
    TM_ASSERT(k >= 2, "k-ary n-cube requires k >= 2");
    TM_ASSERT(n >= 1, "k-ary n-cube requires n >= 1");
    return Shape(static_cast<std::size_t>(n), k);
}

} // namespace

KAryNCube::KAryNCube(int k, int n)
    : Topology(uniformShape(k, n))
{
}

std::optional<NodeId>
KAryNCube::neighbor(NodeId node, Direction dir) const
{
    Coords c = coords(node);
    const int k = radix(dir.dim);
    int next = c[dir.dim] + dir.delta();
    if (next < 0)
        next += k;
    else if (next >= k)
        next -= k;
    // In a 2-ary cube both directions reach the same single neighbor;
    // model one channel per neighbor pair by only exposing the hop
    // whose direction matches the non-wrapping move.
    if (k == 2 && isWraparound(node, dir))
        return std::nullopt;
    c[dir.dim] = next;
    return this->node(c);
}

bool
KAryNCube::isWraparound(NodeId node, Direction dir) const
{
    const Coords c = coords(node);
    const int k = radix(dir.dim);
    if (dir.positive)
        return c[dir.dim] == k - 1;
    return c[dir.dim] == 0;
}

std::string
KAryNCube::name() const
{
    return std::to_string(k()) + "-ary " + std::to_string(numDims())
        + "-cube";
}

int
KAryNCube::distance(NodeId a, NodeId b) const
{
    const Coords ca = coords(a);
    const Coords cb = coords(b);
    int dist = 0;
    for (std::size_t d = 0; d < ca.size(); ++d) {
        const int k = shape_[d];
        const int direct = std::abs(ca[d] - cb[d]);
        dist += std::min(direct, k - direct);
    }
    return dist;
}

int
KAryNCube::diameter() const
{
    int diam = 0;
    for (int k : shape_)
        diam += k / 2;
    return diam;
}

} // namespace turnmodel
