/**
 * @file
 * Dense identifiers for the unidirectional network channels of a
 * topology. A channel is the ordered pair (source node, direction of
 * travel); it exists when the topology reports a neighbor that way.
 * The deadlock checker numbers channel-dependency-graph vertices with
 * these ids, and the simulator indexes router ports with them.
 */

#ifndef TURNMODEL_TOPOLOGY_CHANNEL_HPP
#define TURNMODEL_TOPOLOGY_CHANNEL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace turnmodel {

/** Dense channel identifier: src * 2n + dir id. */
using ChannelId = std::uint32_t;

/** Sentinel for "no channel". */
inline constexpr ChannelId kInvalidChannel = 0xffffffffu;

/**
 * Maps between (node, direction) pairs and dense channel ids for one
 * topology, and enumerates the channels that actually exist.
 */
class ChannelSpace
{
  public:
    /** @param topo Topology; must outlive this object. */
    explicit ChannelSpace(const Topology &topo);

    const Topology &topology() const { return topo_; }

    /** Upper bound (exclusive) on channel ids: numNodes * 2n. */
    ChannelId idBound() const { return bound_; }

    /** Number of channels that exist. */
    std::size_t count() const { return existing_.size(); }

    /** Channel id of the hop leaving @p src in direction @p dir. */
    ChannelId id(NodeId src, Direction dir) const;

    /** Source node of a channel. */
    NodeId source(ChannelId ch) const;

    /** Direction of travel of a channel. */
    Direction direction(ChannelId ch) const;

    /** Destination node of a channel; panics when it does not exist. */
    NodeId destination(ChannelId ch) const;

    /** Whether the channel exists in the topology. */
    bool exists(ChannelId ch) const;

    /** Whether the channel is a wraparound hop. */
    bool isWraparound(ChannelId ch) const;

    /** All existing channels, in id order. */
    const std::vector<ChannelId> &channels() const { return existing_; }

    /** "(x,y) -> east" rendering for traces. */
    std::string toString(ChannelId ch) const;

  private:
    const Topology &topo_;
    ChannelId bound_;
    std::vector<ChannelId> existing_;
    std::vector<NodeId> dest_;       ///< Indexed by channel id.
    std::vector<bool> exists_;       ///< Indexed by channel id.
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_CHANNEL_HPP
