#include "topology/virtual_channels.hpp"

#include <cmath>
#include <cstdlib>

#include "util/logging.hpp"

namespace turnmodel {

VirtualizedMesh::VirtualizedMesh(Shape physical_shape,
                                 std::vector<int> vcs)
    : Topology(std::move(physical_shape)), vcs_(std::move(vcs))
{
    TM_ASSERT(vcs_.size() == shape_.size(),
              "one virtual channel count per physical dimension");
    num_virtual_dims_ = 0;
    for (std::size_t p = 0; p < vcs_.size(); ++p) {
        TM_ASSERT(vcs_[p] >= 1, "each dimension needs at least one "
                                "virtual channel pair");
        vdim_base_.push_back(num_virtual_dims_);
        for (int vc = 0; vc < vcs_[p]; ++vc) {
            phys_of_vdim_.push_back(static_cast<int>(p));
            vc_of_vdim_.push_back(vc);
            ++num_virtual_dims_;
        }
    }
    TM_ASSERT(num_virtual_dims_ < 64, "too many virtual dimensions");
}

VirtualizedMesh
VirtualizedMesh::doubleY(int m, int n)
{
    return VirtualizedMesh(Shape{m, n}, {1, 2});
}

VirtualizedMesh
VirtualizedMesh::uniform(Shape physical_shape, int v)
{
    std::vector<int> vcs(physical_shape.size(), v);
    return VirtualizedMesh(std::move(physical_shape), std::move(vcs));
}

int
VirtualizedMesh::radix(int dim) const
{
    return shape_[static_cast<std::size_t>(physicalDim(dim))];
}

int
VirtualizedMesh::physicalDim(int vdim) const
{
    return phys_of_vdim_[static_cast<std::size_t>(vdim)];
}

int
VirtualizedMesh::vcIndex(int vdim) const
{
    return vc_of_vdim_[static_cast<std::size_t>(vdim)];
}

int
VirtualizedMesh::virtualDim(int pdim, int vc) const
{
    TM_ASSERT(vc >= 0 && vc < vcsOf(pdim), "vc index out of range");
    return vdim_base_[static_cast<std::size_t>(pdim)] + vc;
}

Direction
VirtualizedMesh::physicalDirection(Direction vdir) const
{
    return Direction(static_cast<std::uint8_t>(physicalDim(vdir.dim)),
                     vdir.positive);
}

std::optional<NodeId>
VirtualizedMesh::neighbor(NodeId node, Direction dir) const
{
    Coords c = coordsOf(node, shape_);
    const int pdim = physicalDim(dir.dim);
    const int next = c[static_cast<std::size_t>(pdim)] + dir.delta();
    if (next < 0 || next >= shape_[static_cast<std::size_t>(pdim)])
        return std::nullopt;
    c[static_cast<std::size_t>(pdim)] = next;
    return nodeAt(c, shape_);
}

bool
VirtualizedMesh::isWraparound(NodeId, Direction) const
{
    return false;
}

std::string
VirtualizedMesh::name() const
{
    std::string out;
    for (std::size_t p = 0; p < shape_.size(); ++p) {
        if (p > 0)
            out += 'x';
        out += std::to_string(shape_[p]);
    }
    out += " mesh (vcs";
    for (int v : vcs_)
        out += ' ' + std::to_string(v);
    return out + ")";
}

int
VirtualizedMesh::distance(NodeId a, NodeId b) const
{
    const Coords ca = coordsOf(a, shape_);
    const Coords cb = coordsOf(b, shape_);
    int dist = 0;
    for (std::size_t p = 0; p < ca.size(); ++p)
        dist += std::abs(ca[p] - cb[p]);
    return dist;
}

int
VirtualizedMesh::diameter() const
{
    int diam = 0;
    for (int k : shape_)
        diam += k - 1;
    return diam;
}

DirId
VirtualizedMesh::physicalChannelGroup(DirId dir) const
{
    const Direction v = Direction::fromId(dir);
    return Direction(static_cast<std::uint8_t>(physicalDim(v.dim)),
                     v.positive).id();
}

bool
VirtualizedMesh::hasSharedPhysicalChannels() const
{
    return num_virtual_dims_ > numPhysicalDims();
}

} // namespace turnmodel
