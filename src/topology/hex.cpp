#include "topology/hex.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hpp"

namespace turnmodel {

HexMesh::HexMesh(int kq, int kr)
    : Topology(Shape{kq, kr})
{
}

int
HexMesh::radix(int dim) const
{
    // The s axis spans the shorter of the two rhombus sides.
    if (dim == 0)
        return shape_[0];
    if (dim == 1)
        return shape_[1];
    return std::min(shape_[0], shape_[1]);
}

std::pair<int, int>
HexMesh::axialDelta(Direction dir)
{
    const int sign = dir.delta();
    switch (dir.dim) {
      case 0:  return {sign, 0};
      case 1:  return {0, sign};
      default: return {sign, -sign};
    }
}

std::optional<NodeId>
HexMesh::neighbor(NodeId node, Direction dir) const
{
    Coords c = coords(node);
    const auto [dq, dr] = axialDelta(dir);
    const int q = c[0] + dq;
    const int r = c[1] + dr;
    if (q < 0 || q >= shape_[0] || r < 0 || r >= shape_[1])
        return std::nullopt;
    return this->node({q, r});
}

bool
HexMesh::isWraparound(NodeId, Direction) const
{
    return false;
}

std::string
HexMesh::name() const
{
    return std::to_string(shape_[0]) + "x" + std::to_string(shape_[1])
        + " hex mesh";
}

int
HexMesh::distance(NodeId a, NodeId b) const
{
    const Coords ca = coords(a);
    const Coords cb = coords(b);
    const int dq = cb[0] - ca[0];
    const int dr = cb[1] - ca[1];
    return (std::abs(dq) + std::abs(dr) + std::abs(dq + dr)) / 2;
}

int
HexMesh::diameter() const
{
    // Opposite corners of the rhombus along the "long" diagonal:
    // deltas share a sign there, so distance is their sum.
    return (shape_[0] - 1) + (shape_[1] - 1);
}

} // namespace turnmodel
