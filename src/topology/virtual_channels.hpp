/**
 * @file
 * Virtual-channel view of a mesh. Step 1 of the turn model says: "If
 * each node has v channels in a physical direction, treat these
 * channels as being in v distinct virtual directions." This class
 * realizes that step: a physical n-dimensional mesh whose dimension
 * i carries vcs[i] virtual channel pairs is presented as a topology
 * with sum(vcs) *virtual* dimensions, so that every existing tool —
 * turn sets, cycle analysis, the channel dependency graph checker,
 * turn-table routing, the simulator — works on the virtual channels
 * unchanged.
 *
 * Node ids and coordinates remain physical; only directions
 * multiply. Virtual directions sharing a physical dimension share
 * the physical wire, which the simulator honors via
 * physicalChannelGroup() (one flit per physical channel per cycle).
 *
 * This is the substrate for fully adaptive routing with minimal
 * extra channels (Glass & Ni's companion result [18]): doubling only
 * the y channels of a 2D mesh admits the fully adaptive "mad-y"
 * algorithm; see core/routing/mad_y.hpp.
 */

#ifndef TURNMODEL_TOPOLOGY_VIRTUAL_CHANNELS_HPP
#define TURNMODEL_TOPOLOGY_VIRTUAL_CHANNELS_HPP

#include <vector>

#include "topology/mesh.hpp"

namespace turnmodel {

/** A mesh with per-dimension virtual channel multiplicities. */
class VirtualizedMesh : public Topology
{
  public:
    /**
     * @param physical_shape Physical mesh shape.
     * @param vcs            Virtual channel pairs per physical
     *                       dimension (each >= 1).
     */
    VirtualizedMesh(Shape physical_shape, std::vector<int> vcs);

    /** The conventional double-y 2D mesh: one x pair, two y pairs. */
    static VirtualizedMesh doubleY(int m, int n);

    /**
     * Every physical dimension carries @p v virtual channel pairs —
     * the substrate of escape-VC fully adaptive routing, which needs
     * at least one adaptive channel beside the escape channel in
     * every dimension (v >= 2).
     */
    static VirtualizedMesh uniform(Shape physical_shape, int v);

    // Virtual view -----------------------------------------------------
    int numDims() const override { return num_virtual_dims_; }
    int radix(int dim) const override;
    std::optional<NodeId> neighbor(NodeId node, Direction dir)
        const override;
    bool isWraparound(NodeId node, Direction dir) const override;
    std::string name() const override;
    /** Physical Manhattan distance (what minimal routing needs). */
    int distance(NodeId a, NodeId b) const override;
    int diameter() const override;
    DirId physicalChannelGroup(DirId dir) const override;
    bool hasSharedPhysicalChannels() const override;

    // Mapping ----------------------------------------------------------
    /** Physical dimension carrying virtual dimension @p vdim. */
    int physicalDim(int vdim) const;

    /** Virtual-channel index of @p vdim within its physical dim. */
    int vcIndex(int vdim) const;

    /** Number of physical dimensions. */
    int numPhysicalDims() const
    {
        return static_cast<int>(shape_.size());
    }

    /** Virtual channel pairs of physical dimension @p pdim. */
    int vcsOf(int pdim) const
    {
        return vcs_[static_cast<std::size_t>(pdim)];
    }

    /**
     * The virtual dimension for (physical dim, vc index); vc 0 is
     * the base channel.
     */
    int virtualDim(int pdim, int vc) const;

    /** Physical direction carrying a virtual direction. */
    Direction physicalDirection(Direction vdir) const;

  private:
    std::vector<int> vcs_;
    std::vector<int> phys_of_vdim_;
    std::vector<int> vc_of_vdim_;
    std::vector<int> vdim_base_;   ///< First vdim of each phys dim.
    int num_virtual_dims_;
};

} // namespace turnmodel

#endif // TURNMODEL_TOPOLOGY_VIRTUAL_CHANNELS_HPP
