#include "topology/direction.hpp"

#include "util/logging.hpp"

namespace turnmodel {

std::vector<Direction>
allDirections(int num_dims)
{
    TM_ASSERT(num_dims > 0 && num_dims < 128, "bad dimension count");
    std::vector<Direction> dirs;
    dirs.reserve(static_cast<std::size_t>(2 * num_dims));
    for (int d = 0; d < num_dims; ++d) {
        dirs.emplace_back(static_cast<std::uint8_t>(d), false);
        dirs.emplace_back(static_cast<std::uint8_t>(d), true);
    }
    return dirs;
}

std::string
directionName(Direction d)
{
    if (d.dim == 0)
        return d.positive ? "east" : "west";
    if (d.dim == 1)
        return d.positive ? "north" : "south";
    return std::string(d.positive ? "+d" : "-d") + std::to_string(d.dim);
}

std::optional<Direction>
directionFromName(const std::string &name, int num_dims)
{
    if (name == "west")
        return num_dims >= 1 ? std::optional(dir2d::West) : std::nullopt;
    if (name == "east")
        return num_dims >= 1 ? std::optional(dir2d::East) : std::nullopt;
    if (name == "south")
        return num_dims >= 2 ? std::optional(dir2d::South) : std::nullopt;
    if (name == "north")
        return num_dims >= 2 ? std::optional(dir2d::North) : std::nullopt;
    if (name.size() < 3 || (name[0] != '+' && name[0] != '-') ||
        name[1] != 'd') {
        return std::nullopt;
    }
    int dim = 0;
    for (std::size_t i = 2; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9')
            return std::nullopt;
        dim = dim * 10 + (name[i] - '0');
        if (dim >= 128)
            return std::nullopt;
    }
    if (dim >= num_dims)
        return std::nullopt;
    return Direction(static_cast<std::uint8_t>(dim), name[0] == '+');
}

} // namespace turnmodel
