#include "topology/direction.hpp"

#include "util/logging.hpp"

namespace turnmodel {

std::vector<Direction>
allDirections(int num_dims)
{
    TM_ASSERT(num_dims > 0 && num_dims < 128, "bad dimension count");
    std::vector<Direction> dirs;
    dirs.reserve(static_cast<std::size_t>(2 * num_dims));
    for (int d = 0; d < num_dims; ++d) {
        dirs.emplace_back(static_cast<std::uint8_t>(d), false);
        dirs.emplace_back(static_cast<std::uint8_t>(d), true);
    }
    return dirs;
}

std::string
directionName(Direction d)
{
    if (d.dim == 0)
        return d.positive ? "east" : "west";
    if (d.dim == 1)
        return d.positive ? "north" : "south";
    return std::string(d.positive ? "+d" : "-d") + std::to_string(d.dim);
}

} // namespace turnmodel
