#include "topology/topology.hpp"

#include "util/logging.hpp"

namespace turnmodel {

Topology::Topology(Shape shape)
    : shape_(std::move(shape))
{
    TM_ASSERT(!shape_.empty(), "topology needs at least one dimension");
    const std::uint64_t n = shapeSize(shape_);
    TM_ASSERT(n <= (1ULL << 31), "topology too large");
    num_nodes_ = static_cast<NodeId>(n);
}

std::vector<Direction>
Topology::outgoingDirections(NodeId node) const
{
    std::vector<Direction> out;
    out.reserve(static_cast<std::size_t>(numDirs()));
    for (Direction d : allDirections(numDims())) {
        if (neighbor(node, d).has_value())
            out.push_back(d);
    }
    return out;
}

std::vector<Direction>
Topology::incomingDirections(NodeId node) const
{
    std::vector<Direction> in;
    in.reserve(static_cast<std::size_t>(numDirs()));
    for (Direction d : allDirections(numDims())) {
        // A packet arrives at `node` travelling in direction d iff the
        // upstream node exists, i.e. node has a hop in d.opposite().
        if (neighbor(node, d.opposite()).has_value())
            in.push_back(d);
    }
    return in;
}

std::size_t
Topology::countChannels() const
{
    std::size_t count = 0;
    for (NodeId v = 0; v < numNodes(); ++v)
        count += outgoingDirections(v).size();
    return count;
}

} // namespace turnmodel
