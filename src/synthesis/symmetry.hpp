/**
 * @file
 * n-dimensional turn-diagram symmetries: signed permutations of the
 * dimensions (permute axes, optionally flip each sign), the
 * hyperoctahedral group B_n of order 2^n n!. For n = 2 this is the
 * square's symmetry group used by the paper's Section 3 argument
 * (cycle_analysis.hpp's SquareSymmetry); the synthesis engine uses
 * the general form to collapse enumerated candidate turn sets into
 * equivalence classes before the expensive channel-dependency-graph
 * verification, and to recognize the paper's three unique 2D
 * algorithms among the twelve deadlock-free prohibitions.
 *
 * Deadlock freedom and adaptiveness are invariant under a signed
 * permutation only when it is also a topology automorphism, so
 * admissibleSymmetries() restricts the group per topology: for
 * orthogonal meshes, permutations between equal-radix dimensions
 * with any sign flips; for other topologies (hex, oct, virtualized
 * meshes) only the identity, since their routing axes are
 * coordinate-coupled.
 */

#ifndef TURNMODEL_SYNTHESIS_SYMMETRY_HPP
#define TURNMODEL_SYNTHESIS_SYMMETRY_HPP

#include <cstdint>
#include <vector>

#include "core/turn_set.hpp"
#include "topology/topology.hpp"

namespace turnmodel {

/** One signed permutation of the dimensions. */
class SignedPermutation
{
  public:
    /**
     * @param perm Image of each dimension; a permutation of 0..n-1.
     * @param flip Per-dimension sign flip, applied after permuting:
     *             bit perm[d] flips the sign of directions along
     *             source dimension d.
     */
    SignedPermutation(std::vector<int> perm, std::uint32_t flip);

    /** Identity on @p num_dims dimensions. */
    static SignedPermutation identity(int num_dims);

    /** The full hyperoctahedral group, 2^n n! elements. */
    static std::vector<SignedPermutation> fullGroup(int num_dims);

    int numDims() const { return static_cast<int>(perm_.size()); }

    Direction apply(Direction d) const;
    Turn apply(Turn t) const;
    TurnSet apply(const TurnSet &set) const;

    bool isIdentity() const;

  private:
    std::vector<int> perm_;
    std::uint32_t flip_;
};

/**
 * The subgroup of signed permutations that are automorphisms of
 * @p topo's channel structure (see file comment). Always contains
 * the identity.
 */
std::vector<SignedPermutation> admissibleSymmetries(const Topology &topo);

/**
 * Canonical key of a turn set under a symmetry group: the
 * lexicographically smallest sorted prohibited-turn-id list among
 * the images of @p set under @p group. Two sets are equivalent iff
 * their keys are equal.
 */
std::vector<int> canonicalKey(const TurnSet &set,
                              const std::vector<SignedPermutation> &group);

} // namespace turnmodel

#endif // TURNMODEL_SYNTHESIS_SYMMETRY_HPP
