#include "synthesis/engine.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

#include "core/channel_dependency.hpp"
#include "core/cycle_analysis.hpp"
#include "core/routing/compiled.hpp"
#include "core/routing/turn_table.hpp"
#include "exec/thread_pool.hpp"
#include "synthesis/symmetry.hpp"
#include "util/logging.hpp"

namespace turnmodel {

namespace {

/** Largest minimal-subset space Auto mode walks exhaustively. */
constexpr std::uint64_t kAutoSubsetLimit = std::uint64_t{1} << 20;

EnumerationMode
resolveMode(const SynthesisConfig &config, int num_dims)
{
    if (config.mode != EnumerationMode::Auto)
        return config.mode;
    return countMinimalProhibitionSubsets(num_dims) <= kAutoSubsetLimit
        ? EnumerationMode::MinimalSubsets
        : EnumerationMode::OnePerCycle;
}

/**
 * S_f for every ordered pair, counted exhaustively against a fully
 * adaptive reference routing — valid for topologies (hex, oct)
 * where the orthogonal-mesh multinomial does not apply, and
 * identical to fullyAdaptivePathCount on meshes. The reference is
 * compiled into a single immutable table (the lazy reachability
 * cache underneath TurnTableRouting is not thread safe, but the
 * snapshot is), so one copy serves every pool job.
 */
std::vector<std::uint64_t>
referencePathCounts(const Topology &topo, bool minimal,
                    ThreadPool &pool)
{
    const std::size_t nodes = topo.numNodes();
    TurnSet every(topo.numDims());
    every.allowAll90();
    every.allowAllStraight();
    const TurnTableRouting fully(topo, every, minimal,
                                 "fully-adaptive");
    const CompiledRoutingTable table(fully);
    std::vector<std::uint64_t> counts(nodes * nodes, 0);
    pool.parallelFor(nodes, [&](std::size_t dst_index) {
        const NodeId dst = static_cast<NodeId>(dst_index);
        for (NodeId src = 0; src < topo.numNodes(); ++src) {
            if (src == dst)
                continue;
            const std::uint64_t sf =
                countAllowedShortestPaths(table, src, dst);
            TM_ASSERT(sf > 0, "fully adaptive reference disconnected");
            counts[static_cast<std::size_t>(src) * nodes + dst] = sf;
        }
    });
    return counts;
}

/** Mean S_p / S_f over all ordered pairs (Section 3.4 metric). */
AdaptivenessSummary
summarizeAgainstReference(const RoutingAlgorithm &routing,
                          const std::vector<std::uint64_t> &reference)
{
    const Topology &topo = routing.topology();
    const std::size_t nodes = topo.numNodes();
    AdaptivenessSummary summary;
    double ratio_sum = 0.0;
    double path_sum = 0.0;
    std::uint64_t singles = 0;
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            const std::uint64_t sp =
                countAllowedShortestPaths(routing, src, dst);
            const std::uint64_t sf =
                reference[static_cast<std::size_t>(src) * nodes + dst];
            ratio_sum +=
                static_cast<double>(sp) / static_cast<double>(sf);
            path_sum += static_cast<double>(sp);
            if (sp == 1)
                ++singles;
            ++summary.pairs;
        }
    }
    if (summary.pairs > 0) {
        const double pairs = static_cast<double>(summary.pairs);
        summary.mean_ratio = ratio_sum / pairs;
        summary.mean_paths = path_sum / pairs;
        summary.fraction_single = static_cast<double>(singles) / pairs;
    }
    return summary;
}

} // namespace

std::size_t
SynthesisReport::deadlockFreeCandidates() const
{
    std::size_t count = 0;
    for (const SynthesizedCandidate &c : candidates) {
        if (c.deadlock_free)
            ++count;
    }
    return count;
}

std::size_t
SynthesisReport::deadlockFreeClasses() const
{
    std::size_t count = 0;
    for (const SynthesisClass &cls : classes) {
        if (candidates[cls.representative].deadlock_free)
            ++count;
    }
    return count;
}

std::size_t
SynthesisReport::connectedCandidates() const
{
    std::size_t count = 0;
    for (const SynthesizedCandidate &c : candidates) {
        if (c.connected)
            ++count;
    }
    return count;
}

std::size_t
SynthesisReport::usableCandidates() const
{
    std::size_t count = 0;
    for (const SynthesizedCandidate &c : candidates) {
        if (c.connected && c.deadlock_free)
            ++count;
    }
    return count;
}

std::vector<std::size_t>
SynthesisReport::maximallyAdaptive(double epsilon) const
{
    std::vector<std::size_t> top;
    if (ranking.empty())
        return top;
    const double best =
        candidates[ranking.front()].adaptiveness.mean_ratio;
    for (std::size_t index : ranking) {
        if (candidates[index].adaptiveness.mean_ratio
            >= best - epsilon) {
            top.push_back(index);
        }
    }
    return top;
}

SynthesisReport
synthesize(const Topology &topo, const SynthesisConfig &config)
{
    const int n = topo.numDims();
    TM_ASSERT(n >= 2, "synthesis needs at least two dimensions");

    SynthesisReport report;
    report.topology_name = topo.name();
    report.num_dims = n;
    report.mode_used = resolveMode(config, n);

    // 1+2. Enumerate candidates and prune by abstract-cycle coverage.
    if (report.mode_used == EnumerationMode::MinimalSubsets) {
        report.space_size = countMinimalProhibitionSubsets(n);
        forEachMinimalProhibitionSubset(n, [&](const TurnSet &set) {
            ++report.enumerated;
            if (!breaksAllAbstractCycles(set, n)) {
                ++report.pruned_by_cycles;
                return true;
            }
            SynthesizedCandidate candidate;
            candidate.set = set;
            candidate.breaks_all_cycles = true;
            report.candidates.push_back(std::move(candidate));
            if (config.max_candidates > 0 &&
                report.candidates.size() >= config.max_candidates) {
                report.sampled = true;
                return false;
            }
            return true;
        });
    } else {
        report.space_size = countOneTurnPerCycleSets(n);
        std::uint64_t stride = 1;
        if (config.max_candidates > 0 &&
            report.space_size > config.max_candidates) {
            stride = report.space_size / config.max_candidates;
            report.sampled = true;
        }
        for (std::uint64_t index = 0; index < report.space_size;
             index += stride) {
            ++report.enumerated;
            SynthesizedCandidate candidate;
            candidate.set = oneTurnPerCycleSet(n, index);
            candidate.breaks_all_cycles = true;
            report.candidates.push_back(std::move(candidate));
            if (config.max_candidates > 0 &&
                report.candidates.size() >= config.max_candidates) {
                break;
            }
        }
    }
    for (SynthesizedCandidate &candidate : report.candidates)
        candidate.name = "synth:" + candidate.set.prohibitedSpec();

    // 3. Collapse into symmetry classes.
    const std::vector<SignedPermutation> group = config.use_symmetry
        ? admissibleSymmetries(topo)
        : std::vector<SignedPermutation>{SignedPermutation::identity(n)};
    std::map<std::vector<int>, std::size_t> class_of_key;
    for (std::size_t i = 0; i < report.candidates.size(); ++i) {
        SynthesizedCandidate &candidate = report.candidates[i];
        const std::vector<int> key = canonicalKey(candidate.set, group);
        const auto [it, inserted] =
            class_of_key.emplace(key, report.classes.size());
        if (inserted) {
            SynthesisClass cls;
            cls.representative = i;
            report.classes.push_back(cls);
            candidate.is_representative = true;
        }
        candidate.class_id = it->second;
        ++report.classes[it->second].size;
    }

    // 4. Verify one representative per class (or everything with
    // verify_all), then propagate class verdicts. Candidates are
    // independent, so verification fans out across the pool; each
    // job builds its own routing and writes only its own slot, which
    // keeps the report identical at any thread count.
    ThreadPool pool(config.num_threads);
    const auto verify = [&](SynthesizedCandidate &candidate) {
        // Snapshot the candidate once; both checks then run off the
        // same immutable table. Connectivity: turn-table routing is
        // reachability guarded, so a destination gets candidates
        // from the injection state iff it is reachable, making the
        // injection-row scan exactly isConnected().
        const TurnTableRouting routing(topo, candidate.set,
                                       config.minimal, candidate.name);
        const CompiledRoutingTable table(routing);
        candidate.connected = table.allPairsRoutable();
        candidate.deadlock_free = isDeadlockFree(table);
        candidate.verified_directly = true;
    };
    std::vector<std::size_t> to_verify;
    for (const SynthesisClass &cls : report.classes)
        to_verify.push_back(cls.representative);
    if (config.verify_all) {
        for (std::size_t i = 0; i < report.candidates.size(); ++i) {
            if (!report.candidates[i].is_representative)
                to_verify.push_back(i);
        }
    }
    pool.parallelFor(to_verify.size(), [&](std::size_t i) {
        verify(report.candidates[to_verify[i]]);
    });
    report.cdg_checks = to_verify.size();
    for (SynthesizedCandidate &candidate : report.candidates) {
        if (candidate.verified_directly)
            continue;
        const SynthesizedCandidate &rep = report.candidates[
            report.classes[candidate.class_id].representative];
        candidate.connected = rep.connected;
        candidate.deadlock_free = rep.deadlock_free;
    }

    // 5. Rank surviving representatives by adaptiveness, one pool
    // job per survivor.
    if (config.rank) {
        const std::vector<std::uint64_t> reference =
            referencePathCounts(topo, config.minimal, pool);
        for (const SynthesisClass &cls : report.classes) {
            const SynthesizedCandidate &rep =
                report.candidates[cls.representative];
            if (!rep.connected || !rep.deadlock_free)
                continue;
            report.ranking.push_back(cls.representative);
        }
        pool.parallelFor(report.ranking.size(), [&](std::size_t i) {
            SynthesizedCandidate &rep =
                report.candidates[report.ranking[i]];
            const TurnTableRouting routing(topo, rep.set,
                                           config.minimal, rep.name);
            const CompiledRoutingTable table(routing);
            rep.adaptiveness =
                summarizeAgainstReference(table, reference);
            rep.has_adaptiveness = true;
        });
        std::sort(report.ranking.begin(), report.ranking.end(),
                  [&report](std::size_t a, std::size_t b) {
                      const auto &ca = report.candidates[a];
                      const auto &cb = report.candidates[b];
                      if (ca.adaptiveness.mean_ratio !=
                          cb.adaptiveness.mean_ratio) {
                          return ca.adaptiveness.mean_ratio >
                                 cb.adaptiveness.mean_ratio;
                      }
                      return ca.name < cb.name;
                  });
    }
    return report;
}

void
printSynthesisReport(std::ostream &os, const SynthesisReport &report,
                     std::size_t top)
{
    const char *mode =
        report.mode_used == EnumerationMode::MinimalSubsets
        ? "minimal-subsets" : "one-per-cycle";
    os << "== turn-set synthesis: " << report.topology_name << " ==\n";
    os << "  enumeration: " << mode << ", space " << report.space_size
       << ", generated " << report.enumerated;
    if (report.sampled)
        os << " (SAMPLED — counts are a lower bound)";
    os << '\n';
    os << "  cycle-coverage pruning: " << report.pruned_by_cycles
       << " dropped, " << report.candidates.size() << " kept\n";
    os << "  symmetry classes: " << report.classes.size()
       << " (CDG checks run: " << report.cdg_checks << ")\n";
    os << "  deadlock free: " << report.deadlockFreeCandidates()
       << " of " << report.candidates.size() << " candidates in "
       << report.deadlockFreeClasses() << " classes\n";
    os << "  connected: " << report.connectedCandidates()
       << ", usable (connected + deadlock free): "
       << report.usableCandidates() << '\n';

    if (report.ranking.empty()) {
        os << "  (no verified survivors ranked)\n";
        return;
    }
    os << "  ranked survivors (best adaptiveness first):\n";
    os << std::setw(4) << "#" << std::setw(14) << "mean S_p/S_f"
       << std::setw(13) << "frac S_p=1" << std::setw(7) << "class"
       << "  algorithm\n";
    const std::size_t shown = std::min(top, report.ranking.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const SynthesizedCandidate &c =
            report.candidates[report.ranking[i]];
        os << std::setw(4) << i + 1 << std::setw(14) << std::fixed
           << std::setprecision(4) << c.adaptiveness.mean_ratio
           << std::setw(13) << c.adaptiveness.fraction_single
           << std::setw(7)
           << report.classes[c.class_id].size
           << "  " << c.name << '\n';
    }
    if (shown < report.ranking.size()) {
        os << "  ... " << report.ranking.size() - shown
           << " more survivors not shown\n";
    }
}

} // namespace turnmodel
