/**
 * @file
 * Turn-set synthesis engine: mechanically derive deadlock-free
 * partially adaptive routing algorithms for a topology, the way the
 * turn model prescribes (Glass & Ni, Sections 2-3) instead of
 * hand-coding the paper's named results.
 *
 * Pipeline:
 *
 *  1. enumerate candidate prohibited-turn sets — either every
 *     minimal-size subset of the 90-degree turns, or directly the
 *     one-prohibition-per-abstract-cycle family (indexed, so huge
 *     spaces can be sampled deterministically);
 *  2. prune candidates that leave some abstract cycle unbroken
 *     (necessary condition, Theorem 1);
 *  3. collapse the survivors into symmetry classes under the
 *     admissible signed permutations of the topology's dimensions —
 *     the paper's rotation/reflection argument, generalized;
 *  4. machine-verify one representative per class: full connectivity
 *     of the reachability-guarded routing function (Step 4 of the
 *     model; with minimal routing this also rules out livelock) and
 *     deadlock freedom by the channel-dependency-graph criterion;
 *  5. rank the verified survivors by degree of adaptiveness
 *     (mean S_p / S_f over all pairs, Section 3.4).
 *
 * Every candidate carries a factory-registered name
 * ("synth:<prohibited-turn-spec>"), so winners run through the
 * simulator and sweep harness side by side with the hand-coded
 * algorithms.
 *
 * On the 2D mesh this reproduces Section 3 exactly: 28 minimal-size
 * subsets, 16 that break both abstract cycles, 12 deadlock free,
 * and 3 symmetry classes — west-first, north-last, negative-first —
 * all maximally adaptive.
 */

#ifndef TURNMODEL_SYNTHESIS_ENGINE_HPP
#define TURNMODEL_SYNTHESIS_ENGINE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/adaptiveness.hpp"
#include "core/turn_set.hpp"
#include "topology/topology.hpp"

namespace turnmodel {

/** How candidate prohibited-turn sets are generated. */
enum class EnumerationMode
{
    /**
     * MinimalSubsets when the subset space is small enough to walk
     * exhaustively, OnePerCycle otherwise.
     */
    Auto,
    /**
     * All n(n-1)-element subsets of the 4n(n-1) 90-degree turns;
     * cycle-coverage pruning then does real work (28 -> 16 on the
     * 2D mesh).
     */
    MinimalSubsets,
    /**
     * Directly the 4^(n(n-1)) sets prohibiting one turn per abstract
     * cycle — the pruned family, indexable for sampling.
     */
    OnePerCycle,
};

/** Synthesis engine configuration. */
struct SynthesisConfig
{
    EnumerationMode mode = EnumerationMode::Auto;

    /**
     * Cap on cycle-covering candidates considered; 0 = unlimited.
     * In OnePerCycle mode the cap samples the index space with a
     * deterministic stride; in MinimalSubsets mode enumeration stops
     * at the cap. A capped run sets SynthesisReport::sampled.
     */
    std::uint64_t max_candidates = 0;

    /** Collapse candidates into symmetry classes before verifying. */
    bool use_symmetry = true;

    /** Verify every candidate, not only class representatives
     * (cross-checks verdict propagation; slow). */
    bool verify_all = false;

    /** Compute adaptiveness and rank verified survivors. */
    bool rank = true;

    /** Restrict synthesized routing to profitable hops. */
    bool minimal = true;

    /**
     * Worker threads for the verification and ranking stages, which
     * are embarrassingly parallel per candidate; 0 = hardware
     * concurrency, 1 = serial. Results are identical at any thread
     * count (every job owns its routing instance and writes its own
     * candidate slot).
     */
    unsigned num_threads = 0;
};

/** One enumerated candidate and everything learned about it. */
struct SynthesizedCandidate
{
    TurnSet set;
    /** Factory name, "synth:<prohibited-turn-spec>". */
    std::string name;
    /** Survived abstract-cycle pruning (always true in OnePerCycle
     * mode, by construction). */
    bool breaks_all_cycles = false;
    /** Symmetry class (indexes SynthesisReport::classes). */
    std::size_t class_id = 0;
    /** First-seen member of its class; the one verified. */
    bool is_representative = false;
    /** This candidate's own CDG/connectivity were computed (always
     * true for representatives; true for all with verify_all). */
    bool verified_directly = false;
    /** Routing function connects every ordered node pair. */
    bool connected = false;
    /** Channel dependency graph is acyclic. */
    bool deadlock_free = false;
    /** Valid when has_adaptiveness. */
    AdaptivenessSummary adaptiveness;
    bool has_adaptiveness = false;

    SynthesizedCandidate() : set(1) {}
};

/** A symmetry class of candidates. */
struct SynthesisClass
{
    std::size_t representative = 0;   ///< Candidate index.
    std::size_t size = 0;             ///< Members among the enumerated.
};

/** Everything the engine learned about one topology. */
struct SynthesisReport
{
    std::string topology_name;
    int num_dims = 0;
    EnumerationMode mode_used = EnumerationMode::Auto;
    /** Size of the enumeration space before pruning or sampling. */
    std::uint64_t space_size = 0;
    /** Candidate sets actually generated. */
    std::uint64_t enumerated = 0;
    /** Generated candidates that left some abstract cycle unbroken. */
    std::uint64_t pruned_by_cycles = 0;
    /** True when max_candidates truncated the space. */
    bool sampled = false;
    /** Representatives verified with the CDG (plus connectivity). */
    std::size_t cdg_checks = 0;

    /** The cycle-covering candidates, in enumeration order. */
    std::vector<SynthesizedCandidate> candidates;
    std::vector<SynthesisClass> classes;

    /**
     * Indices into candidates of the verified, connected,
     * deadlock-free class representatives, best mean adaptiveness
     * first (name as deterministic tiebreak).
     */
    std::vector<std::size_t> ranking;

    /** Candidates (class verdicts) that are deadlock free. */
    std::size_t deadlockFreeCandidates() const;
    /** Classes whose representative is deadlock free. */
    std::size_t deadlockFreeClasses() const;
    /** Candidates (class verdicts) whose routing is fully connected. */
    std::size_t connectedCandidates() const;
    /** Candidates both connected and deadlock free — the usable
     * algorithms the ranking considers. */
    std::size_t usableCandidates() const;

    /**
     * Prefix of the ranking within @p epsilon of the best mean
     * adaptiveness ratio — the "maximally adaptive" survivors the
     * paper singles out.
     */
    std::vector<std::size_t> maximallyAdaptive(double epsilon = 1e-9)
        const;
};

/**
 * Run the synthesis pipeline for @p topo.
 *
 * The topology only needs to outlive the call; results carry turn
 * sets and names, not routing objects. Use makeRouting with a
 * candidate's name to obtain a runnable algorithm.
 */
SynthesisReport synthesize(const Topology &topo,
                           const SynthesisConfig &config = {});

/**
 * Human-readable report: pipeline counts and the top @p top ranked
 * survivors with their verification verdicts and adaptiveness.
 */
void printSynthesisReport(std::ostream &os, const SynthesisReport &report,
                          std::size_t top = 16);

} // namespace turnmodel

#endif // TURNMODEL_SYNTHESIS_ENGINE_HPP
