#include "synthesis/symmetry.hpp"

#include <algorithm>
#include <numeric>
#include <typeinfo>

#include "topology/mesh.hpp"
#include "util/logging.hpp"

namespace turnmodel {

SignedPermutation::SignedPermutation(std::vector<int> perm,
                                     std::uint32_t flip)
    : perm_(std::move(perm)), flip_(flip)
{
    TM_ASSERT(!perm_.empty() && perm_.size() <= 32,
              "signed permutation over 1..32 dimensions");
    std::vector<int> sorted = perm_;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        TM_ASSERT(sorted[i] == static_cast<int>(i),
                  "perm must be a permutation of 0..n-1");
    }
}

SignedPermutation
SignedPermutation::identity(int num_dims)
{
    std::vector<int> perm(static_cast<std::size_t>(num_dims));
    std::iota(perm.begin(), perm.end(), 0);
    return SignedPermutation(std::move(perm), 0);
}

std::vector<SignedPermutation>
SignedPermutation::fullGroup(int num_dims)
{
    TM_ASSERT(num_dims >= 1 && num_dims <= 8,
              "full group materialization limited to n <= 8");
    std::vector<int> perm(static_cast<std::size_t>(num_dims));
    std::iota(perm.begin(), perm.end(), 0);
    std::vector<SignedPermutation> group;
    do {
        const std::uint32_t flips = std::uint32_t{1}
            << static_cast<std::uint32_t>(num_dims);
        for (std::uint32_t flip = 0; flip < flips; ++flip)
            group.emplace_back(perm, flip);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return group;
}

Direction
SignedPermutation::apply(Direction d) const
{
    TM_ASSERT(d.dim < perm_.size(), "direction outside permutation");
    const int new_dim = perm_[d.dim];
    const bool flipped = (flip_ >> new_dim) & 1;
    return Direction(static_cast<std::uint8_t>(new_dim),
                     flipped ? !d.positive : d.positive);
}

Turn
SignedPermutation::apply(Turn t) const
{
    return Turn(apply(t.from), apply(t.to));
}

TurnSet
SignedPermutation::apply(const TurnSet &set) const
{
    TM_ASSERT(set.numDims() == numDims(),
              "symmetry/turn-set dimensionality mismatch");
    TurnSet out(set.numDims());
    for (Direction f : allDirections(set.numDims())) {
        for (Direction t : allDirections(set.numDims())) {
            const Turn turn(f, t);
            if (set.isAllowed(turn))
                out.allow(apply(turn));
        }
    }
    return out;
}

bool
SignedPermutation::isIdentity() const
{
    if (flip_ != 0)
        return false;
    for (std::size_t i = 0; i < perm_.size(); ++i) {
        if (perm_[i] != static_cast<int>(i))
            return false;
    }
    return true;
}

std::vector<SignedPermutation>
admissibleSymmetries(const Topology &topo)
{
    const int n = topo.numDims();
    // Only plain orthogonal meshes have independent routing axes a
    // signed permutation can act on; everything else (hex and oct
    // axes are coordinate-coupled, virtual channels and wraparounds
    // break reflection symmetry of the dependency structure) keeps
    // just the identity.
    if (typeid(topo) != typeid(NDMesh) || n > 8)
        return {SignedPermutation::identity(n)};
    std::vector<SignedPermutation> admissible;
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    do {
        bool radix_preserving = true;
        for (int d = 0; d < n; ++d) {
            if (topo.radix(d) != topo.radix(perm[static_cast<
                    std::size_t>(d)])) {
                radix_preserving = false;
                break;
            }
        }
        if (!radix_preserving)
            continue;
        const std::uint32_t flips = std::uint32_t{1}
            << static_cast<std::uint32_t>(n);
        for (std::uint32_t flip = 0; flip < flips; ++flip)
            admissible.emplace_back(perm, flip);
    } while (std::next_permutation(perm.begin(), perm.end()));
    return admissible;
}

std::vector<int>
canonicalKey(const TurnSet &set,
             const std::vector<SignedPermutation> &group)
{
    TM_ASSERT(!group.empty(), "symmetry group must be non-empty");
    std::vector<int> best;
    for (const SignedPermutation &sym : group) {
        const TurnSet image = sym.apply(set);
        std::vector<int> key;
        for (Turn t : image.prohibited90())
            key.push_back(t.id(set.numDims()));
        // prohibited90 iterates in id order already, so key is sorted.
        if (best.empty() || key < best)
            best = std::move(key);
    }
    return best;
}

} // namespace turnmodel
