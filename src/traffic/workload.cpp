#include "traffic/workload.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/logging.hpp"

namespace turnmodel {

PacketLengthDist::PacketLengthDist(std::vector<std::uint32_t> lengths,
                                   std::vector<double> weights)
    : lengths_(std::move(lengths))
{
    TM_ASSERT(!lengths_.empty(), "length distribution may not be empty");
    TM_ASSERT(lengths_.size() == weights.size(),
              "lengths and weights must have the same arity");
    const double total = std::accumulate(weights.begin(), weights.end(),
                                         0.0);
    TM_ASSERT(total > 0.0, "weights must sum to a positive value");
    double cum = 0.0;
    mean_ = 0.0;
    for (std::size_t i = 0; i < lengths_.size(); ++i) {
        TM_ASSERT(lengths_[i] > 0, "packet length must be positive");
        TM_ASSERT(weights[i] >= 0.0, "weights must be non-negative");
        cum += weights[i] / total;
        cumulative_.push_back(cum);
        mean_ += static_cast<double>(lengths_[i]) * weights[i] / total;
    }
    cumulative_.back() = 1.0;
}

PacketLengthDist
PacketLengthDist::paperBimodal()
{
    return PacketLengthDist({10, 200}, {1.0, 1.0});
}

PacketLengthDist
PacketLengthDist::fixed(std::uint32_t length)
{
    return PacketLengthDist({length}, {1.0});
}

std::uint32_t
PacketLengthDist::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    for (std::size_t i = 0; i < cumulative_.size(); ++i) {
        if (u < cumulative_[i])
            return lengths_[i];
    }
    return lengths_.back();
}

std::uint32_t
PacketLengthDist::maxLength() const
{
    return *std::max_element(lengths_.begin(), lengths_.end());
}

std::string
PacketLengthDist::toString() const
{
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < lengths_.size(); ++i) {
        if (i > 0)
            os << ",";
        os << lengths_[i];
    }
    os << "} flits";
    return os.str();
}

ArrivalProcess::ArrivalProcess(double rate, double mean_length, Rng rng)
    : rng_(rng)
{
    TM_ASSERT(rate > 0.0, "arrival rate must be positive");
    TM_ASSERT(mean_length > 0.0, "mean length must be positive");
    mean_interarrival_ = mean_length / rate;
    // Randomize the first arrival so sources do not fire in lockstep.
    next_arrival_ = rng_.nextExponential(mean_interarrival_);
}

void
ArrivalProcess::advance()
{
    next_arrival_ += rng_.nextExponential(mean_interarrival_);
}

} // namespace turnmodel
