#include "traffic/uniform.hpp"

namespace turnmodel {

UniformTraffic::UniformTraffic(const Topology &topo)
    : topo_(topo)
{
}

std::optional<NodeId>
UniformTraffic::destination(NodeId src, Rng &rng) const
{
    // Draw uniformly among the numNodes-1 other nodes without
    // rejection: shift ids at or above the source up by one.
    const NodeId n = topo_.numNodes();
    NodeId d = static_cast<NodeId>(rng.nextBounded(n - 1));
    if (d >= src)
        ++d;
    return d;
}

} // namespace turnmodel
