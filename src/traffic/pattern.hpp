/**
 * @file
 * Message traffic patterns (Glass & Ni, Section 6). A pattern maps a
 * generating source node to a destination. The paper evaluates
 * uniform, matrix-transpose (in both the mesh and the hypercube via a
 * mesh embedding), and reverse-flip; further classic patterns are
 * provided as extensions for wider studies.
 */

#ifndef TURNMODEL_TRAFFIC_PATTERN_HPP
#define TURNMODEL_TRAFFIC_PATTERN_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace turnmodel {

/** A source-to-destination traffic mapping. */
class TrafficPattern
{
  public:
    virtual ~TrafficPattern() = default;

    /**
     * Destination for a message generated at @p src. Returns nullopt
     * when the pattern directs the message to the source itself
     * (such messages never enter the network and are skipped).
     *
     * @param src Generating node.
     * @param rng Randomness for stochastic patterns.
     */
    virtual std::optional<NodeId> destination(NodeId src, Rng &rng)
        const = 0;

    /** Pattern name ("uniform", "transpose", ...). */
    virtual std::string name() const = 0;

    /** Whether destination() ignores the rng (fixed permutations). */
    virtual bool isDeterministic() const = 0;

    /**
     * Average minimal-path length of the pattern under @p topo,
     * estimated exactly for deterministic patterns and by sampling
     * otherwise — the quantity the paper quotes (e.g. 10.61 hops for
     * uniform vs 11.34 for transpose in the 16x16 mesh).
     */
    double averageDistance(const Topology &topo, Rng &rng,
                           int samples_per_node = 64) const;
};

using PatternPtr = std::unique_ptr<TrafficPattern>;

/**
 * Construct a pattern by name: "uniform", "transpose" (mesh
 * coordinates swapped or the hypercube embedding of the paper),
 * "reverse-flip", "bit-complement", "bit-reversal", "shuffle",
 * "tornado", "hotspot[:fraction]".
 *
 * @param name Pattern name.
 * @param topo Topology; must outlive the returned object.
 */
PatternPtr makePattern(const std::string &name, const Topology &topo);

/** Names accepted by makePattern for the given topology. */
std::vector<std::string> availablePatternNames(const Topology &topo);

} // namespace turnmodel

#endif // TURNMODEL_TRAFFIC_PATTERN_HPP
