#include "traffic/permutation.hpp"

#include <vector>

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace turnmodel {

namespace {

bool
isBinaryTopology(const Topology &topo)
{
    // Patterns address the *physical* node space, so inspect the
    // physical shape rather than the (possibly virtualized)
    // routing dimensions.
    for (int k : topo.shape()) {
        if (k != 2)
            return false;
    }
    return true;
}

} // namespace

PermutationTraffic::PermutationTraffic(const Topology &topo)
    : topo_(topo)
{
}

std::optional<NodeId>
PermutationTraffic::destination(NodeId src, Rng &) const
{
    if (table_.empty()) {
        table_.resize(topo_.numNodes());
        for (NodeId v = 0; v < topo_.numNodes(); ++v)
            table_[v] = map(v);
    }
    const NodeId d = table_[src];
    if (d == src)
        return std::nullopt;
    return d;
}

bool
PermutationTraffic::isBijective() const
{
    std::vector<bool> hit(topo_.numNodes(), false);
    for (NodeId v = 0; v < topo_.numNodes(); ++v) {
        const NodeId d = map(v);
        if (d >= topo_.numNodes() || hit[d])
            return false;
        hit[d] = true;
    }
    return true;
}

MeshTransposeTraffic::MeshTransposeTraffic(const Topology &topo)
    : PermutationTraffic(topo)
{
    TM_ASSERT(topo.shape().size() == 2 &&
                  topo.shape()[0] == topo.shape()[1],
              "mesh transpose requires a square 2D topology");
}

NodeId
MeshTransposeTraffic::map(NodeId src) const
{
    // The paper indexes processors by (row i, column j) with rows
    // numbered from the top, as in a matrix; with the mesh y axis
    // pointing north this renders (i, j) -> (j, i) as the reflection
    // across the anti-diagonal. Both coordinate deltas then share
    // one sign, so negative-first routing is fully adaptive on every
    // transpose pair — the property behind the paper's Figure 14.
    const Coords c = topo_.coords(src);
    const int m = topo_.shape()[0];
    return topo_.node({m - 1 - c[1], m - 1 - c[0]});
}

HypercubeTransposeTraffic::HypercubeTransposeTraffic(const Topology &topo)
    : PermutationTraffic(topo)
{
    TM_ASSERT(isBinaryTopology(topo) && topo.shape().size() % 2 == 0,
              "hypercube transpose requires a binary cube of even "
              "dimension");
}

NodeId
HypercubeTransposeTraffic::map(NodeId src) const
{
    const int n = static_cast<int>(topo_.shape().size());
    const int half = n / 2;
    std::uint64_t out = 0;
    for (int i = 0; i < n; ++i) {
        bool bit = bitOf(src, (i + half) % n);
        // The first bit of each half is complemented — this is how
        // the paper's mesh-to-hypercube embedding renders (i, j) ->
        // (j, i) on the 8-cube: (~x4, x5, x6, x7, ~x0, x1, x2, x3).
        if (i % half == 0)
            bit = !bit;
        out = withBit(out, i, bit);
    }
    return static_cast<NodeId>(out);
}

ReverseFlipTraffic::ReverseFlipTraffic(const Topology &topo)
    : PermutationTraffic(topo)
{
    TM_ASSERT(isBinaryTopology(topo),
              "reverse-flip requires a binary topology");
}

NodeId
ReverseFlipTraffic::map(NodeId src) const
{
    const int n = static_cast<int>(topo_.shape().size());
    return static_cast<NodeId>(
        complementBits(reverseBits(src, n), n));
}

BitComplementTraffic::BitComplementTraffic(const Topology &topo)
    : PermutationTraffic(topo)
{
}

NodeId
BitComplementTraffic::map(NodeId src) const
{
    Coords c = topo_.coords(src);
    for (std::size_t d = 0; d < c.size(); ++d)
        c[d] = topo_.shape()[d] - 1 - c[d];
    return topo_.node(c);
}

BitReversalTraffic::BitReversalTraffic(const Topology &topo)
    : PermutationTraffic(topo)
{
    TM_ASSERT(isBinaryTopology(topo),
              "bit-reversal requires a binary topology");
}

NodeId
BitReversalTraffic::map(NodeId src) const
{
    return static_cast<NodeId>(
        reverseBits(src, static_cast<int>(topo_.shape().size())));
}

ShuffleTraffic::ShuffleTraffic(const Topology &topo)
    : PermutationTraffic(topo)
{
    TM_ASSERT(isBinaryTopology(topo), "shuffle requires a binary topology");
}

NodeId
ShuffleTraffic::map(NodeId src) const
{
    const int n = static_cast<int>(topo_.shape().size());
    const std::uint64_t x = src;
    return static_cast<NodeId>(
        ((x << 1) | (x >> (n - 1))) & lowMask(n));
}

TornadoTraffic::TornadoTraffic(const Topology &topo)
    : PermutationTraffic(topo)
{
}

NodeId
TornadoTraffic::map(NodeId src) const
{
    Coords c = topo_.coords(src);
    for (std::size_t d = 0; d < c.size(); ++d) {
        const int k = topo_.shape()[d];
        c[d] = (c[d] + (k + 1) / 2 - 1) % k;
    }
    return topo_.node(c);
}

} // namespace turnmodel
