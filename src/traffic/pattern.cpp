#include "traffic/pattern.hpp"

#include <cstdlib>

#include "traffic/hotspot.hpp"
#include "traffic/permutation.hpp"
#include "traffic/uniform.hpp"
#include "util/logging.hpp"

namespace turnmodel {

double
TrafficPattern::averageDistance(const Topology &topo, Rng &rng,
                                int samples_per_node) const
{
    double total = 0.0;
    std::uint64_t count = 0;
    const int samples = isDeterministic() ? 1 : samples_per_node;
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (int s = 0; s < samples; ++s) {
            const auto dst = destination(src, rng);
            if (!dst)
                continue;
            total += topo.distance(src, *dst);
            ++count;
        }
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
}

namespace {

bool
isBinaryTopology(const Topology &topo)
{
    // Patterns address the *physical* node space, so inspect the
    // physical shape rather than the (possibly virtualized)
    // routing dimensions.
    for (int k : topo.shape()) {
        if (k != 2)
            return false;
    }
    return true;
}

} // namespace

PatternPtr
makePattern(const std::string &name, const Topology &topo)
{
    if (name == "uniform")
        return std::make_unique<UniformTraffic>(topo);
    if (name == "transpose") {
        if (isBinaryTopology(topo))
            return std::make_unique<HypercubeTransposeTraffic>(topo);
        return std::make_unique<MeshTransposeTraffic>(topo);
    }
    if (name == "reverse-flip")
        return std::make_unique<ReverseFlipTraffic>(topo);
    if (name == "bit-complement")
        return std::make_unique<BitComplementTraffic>(topo);
    if (name == "bit-reversal")
        return std::make_unique<BitReversalTraffic>(topo);
    if (name == "shuffle")
        return std::make_unique<ShuffleTraffic>(topo);
    if (name == "tornado")
        return std::make_unique<TornadoTraffic>(topo);
    if (name.rfind("hotspot", 0) == 0) {
        double fraction = 0.1;
        if (const auto colon = name.find(':');
            colon != std::string::npos) {
            fraction = std::atof(name.c_str() + colon + 1);
        }
        // Default hotspot: the central node of the network.
        const NodeId center = topo.numNodes() / 2;
        return std::make_unique<HotspotTraffic>(
            topo, std::vector<NodeId>{center}, fraction);
    }
    TM_FATAL("unknown traffic pattern '", name, "'");
}

std::vector<std::string>
availablePatternNames(const Topology &topo)
{
    std::vector<std::string> names{"uniform", "bit-complement",
                                   "tornado", "hotspot:0.1"};
    if (isBinaryTopology(topo)) {
        if (topo.shape().size() % 2 == 0)
            names.push_back("transpose");
        names.push_back("reverse-flip");
        names.push_back("bit-reversal");
        names.push_back("shuffle");
    } else if (topo.shape().size() == 2 &&
               topo.shape()[0] == topo.shape()[1]) {
        names.push_back("transpose");
    }
    return names;
}

} // namespace turnmodel
