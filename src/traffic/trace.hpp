/**
 * @file
 * Compact binary injection trace: the packets a run enqueued at its
 * sources, in generation order, as (cycle, src, dest, length)
 * records. A trace captured from one run (ObsConfig::
 * capture_injections) replays through the replay workload source
 * (WorkloadConfig::replay) as a deterministic TrafficPattern-level
 * workload: the same packets enter the same source queues on the
 * same cycles, so under a deterministic selection policy the replay
 * reproduces the original run's metrics byte for byte.
 *
 * On-disk format (little-endian, fixed width, validated by
 * tools/validate_trace_format.py):
 *
 *   offset 0   8 bytes   magic "TMTRACE1"
 *   offset 8   8 bytes   u64 record count
 *   offset 16  20 bytes  per record: u64 cycle, u32 src, u32 dest,
 *                        u32 length
 *
 * Records are ordered by (cycle, generation order within the cycle);
 * generation order is node-ascending, matching the engines' staging
 * order, so loading never needs to sort.
 */

#ifndef TURNMODEL_TRAFFIC_TRACE_HPP
#define TURNMODEL_TRAFFIC_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "topology/coordinates.hpp"

namespace turnmodel {

/** One captured packet injection. */
struct InjectionRecord
{
    std::uint64_t cycle = 0;    ///< Cycle the packet was enqueued.
    NodeId src = 0;
    NodeId dest = 0;
    std::uint32_t length = 0;   ///< Flits.
};

/** An append-only sequence of injections with binary round-trip IO. */
class InjectionTrace
{
  public:
    /** Append one record; cycles must be non-decreasing. */
    void append(const InjectionRecord &rec);

    const std::vector<InjectionRecord> &records() const
    {
        return records_;
    }
    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    /** Serialize in the on-disk format. @return false on IO error. */
    bool save(std::ostream &os) const;
    bool saveFile(const std::string &path) const;

    /**
     * Parse the on-disk format, replacing this trace's contents.
     * @return false (leaving the trace empty) on a bad magic,
     * truncated stream, or non-chronological records.
     */
    bool load(std::istream &is);
    bool loadFile(const std::string &path);

  private:
    std::vector<InjectionRecord> records_;
};

} // namespace turnmodel

#endif // TURNMODEL_TRAFFIC_TRACE_HPP
