#include "traffic/source.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace turnmodel {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}

NodeSource::NodeSource(NodeId node, double rate,
                       const PacketLengthDist &lengths,
                       const TrafficPattern &pattern,
                       const WorkloadConfig &workload, NodeId hotspot,
                       std::vector<InjectionRecord> replay, Rng rng)
    : node_(node), lengths_(lengths), pattern_(pattern),
      workload_(workload), rng_(rng), hotspot_(hotspot),
      replay_(std::move(replay))
{
    if (workload_.replay != nullptr) {
        // Replay replaces stochastic generation wholesale; the RNG
        // stream stays untouched.
        return;
    }
    storm_applies_ = workload_.storms() && hotspot_ != node_;
    if (storm_applies_) {
        const double duty =
            std::min(std::max(workload_.storm_duty, 0.0), 1.0);
        storm_window_ = static_cast<std::uint64_t>(
            duty
            * static_cast<double>(workload_.storm_period_cycles)
            + 0.5);
    }
    has_arrivals_ = rate > 0.0;
    if (!has_arrivals_) {
        next_arrival_ = kNever;
        return;
    }
    mmpp_ = workload_.bursty();
    if (mmpp_) {
        // ON-phase rate scaled so the long-run mean offered load
        // still equals the configured rate.
        const double on = workload_.burst_on_cycles;
        const double off = workload_.burst_off_cycles;
        mean_ia_ = lengths_.mean() / (rate * (on + off) / on);
        // Randomize the initial phase so nodes do not burst in
        // lockstep; steady-state occupancy is on/(on+off).
        on_ = rng_.nextDouble() < on / (on + off);
        phase_end_ = rng_.nextExponential(on_ ? on : off);
        next_arrival_ = (on_ ? 0.0 : phase_end_)
            + rng_.nextExponential(mean_ia_);
    } else {
        // Plain Poisson: bit-identical to the classic ArrivalProcess
        // (randomized first arrival, then one exponential per
        // message).
        mean_ia_ = lengths_.mean() / rate;
        next_arrival_ = rng_.nextExponential(mean_ia_);
    }
}

double
NodeSource::nextDue(bool arrivals_enabled) const
{
    double due = replies_.empty()
        ? kNever
        : static_cast<double>(replies_.front().due);
    if (!arrivals_enabled)
        return due;
    if (workload_.replay != nullptr) {
        if (replay_cursor_ < replay_.size()) {
            due = std::min(
                due, static_cast<double>(
                         replay_[replay_cursor_].cycle));
        }
        return due;
    }
    if (has_arrivals_)
        due = std::min(due, next_arrival_);
    return due;
}

bool
NodeSource::stormActive(std::uint64_t now) const
{
    return now % workload_.storm_period_cycles < storm_window_;
}

void
NodeSource::stageArrival(std::uint64_t now,
                         std::vector<SourcedPacket> &out)
{
    const auto dest = pattern_.destination(node_, rng_);
    if (!dest)
        return;   // Self-directed; never enters the network.
    NodeId target = *dest;
    if (storm_applies_ && stormActive(now)
        && rng_.nextDouble() < workload_.storm_fraction) {
        target = hotspot_;
    }
    const std::uint32_t length = lengths_.sample(rng_);
    out.push_back({node_, target, length, false});
}

void
NodeSource::emit(std::uint64_t now, bool arrivals_enabled,
                 std::vector<SourcedPacket> &out)
{
    // Matured replies first: they are responses to older traffic.
    while (!replies_.empty() && replies_.front().due <= now) {
        const PendingReply &r = replies_.front();
        out.push_back({node_, r.dest, r.length, true});
        replies_.pop_front();
    }
    if (!arrivals_enabled)
        return;

    if (workload_.replay != nullptr) {
        while (replay_cursor_ < replay_.size()
               && replay_[replay_cursor_].cycle <= now) {
            const InjectionRecord &rec = replay_[replay_cursor_++];
            out.push_back({node_, rec.dest, rec.length, false});
        }
        return;
    }
    if (!has_arrivals_)
        return;

    const double dnow = static_cast<double>(now);
    if (!mmpp_) {
        // The classic loop shape: schedule the next arrival, then
        // draw destination and length, while arrivals remain due.
        while (next_arrival_ <= dnow) {
            next_arrival_ += rng_.nextExponential(mean_ia_);
            stageArrival(now, out);
        }
        return;
    }

    // MMPP: process arrival and phase-transition events in time
    // order. Entering OFF freezes the residual inter-arrival time
    // (both clocks shift by the OFF dwell), so next_arrival_ is
    // always a lower bound on the next emission and only ever moves
    // later — exactly what the flat due-time cache requires.
    while (true) {
        if (!on_) {
            if (phase_end_ > dnow)
                break;
            phase_end_ += rng_.nextExponential(
                workload_.burst_on_cycles);
            on_ = true;
            continue;
        }
        if (next_arrival_ <= phase_end_) {
            if (next_arrival_ > dnow)
                break;
            next_arrival_ += rng_.nextExponential(mean_ia_);
            stageArrival(now, out);
        } else {
            if (phase_end_ > dnow)
                break;
            const double off = rng_.nextExponential(
                workload_.burst_off_cycles);
            next_arrival_ += off;
            phase_end_ += off;
            on_ = false;
        }
    }
}

void
NodeSource::scheduleReply(std::uint64_t due, NodeId dest,
                          std::uint32_t length)
{
    TM_ASSERT(replies_.empty() || due >= replies_.back().due,
              "reply due cycles must be non-decreasing");
    replies_.push_back({due, dest, length});
}

std::vector<NodeSource>
buildNodeSources(NodeId num_nodes, double rate,
                 const PacketLengthDist &lengths,
                 const TrafficPattern &pattern,
                 const WorkloadConfig &workload, std::uint64_t seed)
{
    const NodeId hotspot = workload.storm_hotspot >= 0
        ? static_cast<NodeId>(workload.storm_hotspot)
        : num_nodes / 2;
    TM_ASSERT(hotspot < num_nodes, "storm hotspot out of range");
    std::vector<std::vector<InjectionRecord>> per_node;
    if (workload.replay != nullptr) {
        per_node.resize(num_nodes);
        for (const InjectionRecord &rec : workload.replay->records()) {
            TM_ASSERT(rec.src < num_nodes && rec.dest < num_nodes,
                      "replay record endpoint out of range");
            per_node[rec.src].push_back(rec);
        }
    }
    std::vector<NodeSource> sources;
    sources.reserve(num_nodes);
    for (NodeId v = 0; v < num_nodes; ++v) {
        sources.emplace_back(
            v, rate, lengths, pattern, workload, hotspot,
            workload.replay != nullptr
                ? std::move(per_node[v])
                : std::vector<InjectionRecord>{},
            Rng::forStream(seed, v + 1));
    }
    return sources;
}

} // namespace turnmodel
