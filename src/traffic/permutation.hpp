/**
 * @file
 * Deterministic permutation traffic patterns. Each node always sends
 * to the same partner; nodes mapped to themselves generate no
 * network traffic. Includes the paper's matrix-transpose (mesh and
 * hypercube forms) and reverse-flip, plus the classic bit-complement,
 * bit-reversal, shuffle, and tornado patterns as extensions.
 */

#ifndef TURNMODEL_TRAFFIC_PERMUTATION_HPP
#define TURNMODEL_TRAFFIC_PERMUTATION_HPP

#include "traffic/pattern.hpp"

namespace turnmodel {

/** Base for fixed source-to-destination mappings. */
class PermutationTraffic : public TrafficPattern
{
  public:
    /** @param topo Topology; must outlive this object. */
    explicit PermutationTraffic(const Topology &topo);

    std::optional<NodeId> destination(NodeId src, Rng &rng) const override;
    bool isDeterministic() const override { return true; }

    /** The underlying mapping (may map a node to itself). */
    virtual NodeId map(NodeId src) const = 0;

    /** Whether the mapping is a bijection on the node set. */
    bool isBijective() const;

  protected:
    const Topology &topo_;

  private:
    // map() typically round-trips through coordinate vectors, which
    // allocates; destination() sits in the simulator's per-message
    // path and must not. The full table is tiny (one NodeId per
    // node), so it is memoized on first use — lazily, because map()
    // is virtual and unavailable in this base's constructor.
    mutable std::vector<NodeId> table_;
};

/**
 * Matrix transpose in a 2D mesh: the processor at row i, column j
 * sends to the processor at row j, column i. Rows are numbered from
 * the top (matrix convention), so in (x, y) mesh coordinates the map
 * is the anti-diagonal reflection (x, y) -> (m-1-y, m-1-x).
 * Requires a square 2D topology.
 */
class MeshTransposeTraffic : public PermutationTraffic
{
  public:
    explicit MeshTransposeTraffic(const Topology &topo);
    NodeId map(NodeId src) const override;
    std::string name() const override { return "transpose"; }
};

/**
 * The paper's hypercube rendering of matrix transpose: messages go
 * from (x_0,...,x_{n-1}) to the address whose halves are swapped
 * with the first bit of each half complemented; for the 8-cube,
 * (x0..x7) -> (~x4, x5, x6, x7, ~x0, x1, x2, x3).
 */
class HypercubeTransposeTraffic : public PermutationTraffic
{
  public:
    explicit HypercubeTransposeTraffic(const Topology &topo);
    NodeId map(NodeId src) const override;
    std::string name() const override { return "transpose"; }
};

/**
 * Reverse-flip: (x_0,...,x_{n-1}) -> (~x_{n-1},...,~x_0) — the bit
 * order reversed and every bit complemented (binary topologies).
 */
class ReverseFlipTraffic : public PermutationTraffic
{
  public:
    explicit ReverseFlipTraffic(const Topology &topo);
    NodeId map(NodeId src) const override;
    std::string name() const override { return "reverse-flip"; }
};

/** Bit-complement: every coordinate reflected, x_i -> k_i-1-x_i. */
class BitComplementTraffic : public PermutationTraffic
{
  public:
    explicit BitComplementTraffic(const Topology &topo);
    NodeId map(NodeId src) const override;
    std::string name() const override { return "bit-complement"; }
};

/** Bit-reversal of the binary node address (binary topologies). */
class BitReversalTraffic : public PermutationTraffic
{
  public:
    explicit BitReversalTraffic(const Topology &topo);
    NodeId map(NodeId src) const override;
    std::string name() const override { return "bit-reversal"; }
};

/** Perfect shuffle: rotate the binary address left by one. */
class ShuffleTraffic : public PermutationTraffic
{
  public:
    explicit ShuffleTraffic(const Topology &topo);
    NodeId map(NodeId src) const override;
    std::string name() const override { return "shuffle"; }
};

/**
 * Tornado: each node sends (ceil(k/2) - 1) hops around its row in
 * the positive direction of every dimension — an adversarial torus
 * pattern.
 */
class TornadoTraffic : public PermutationTraffic
{
  public:
    explicit TornadoTraffic(const Topology &topo);
    NodeId map(NodeId src) const override;
    std::string name() const override { return "tornado"; }
};

} // namespace turnmodel

#endif // TURNMODEL_TRAFFIC_PERMUTATION_HPP
