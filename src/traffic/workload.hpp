/**
 * @file
 * Message workload generation (Glass & Ni, Section 6): messages are
 * generated at intervals drawn from a negative exponential
 * distribution, and each message is a single packet of 10 or 200
 * flits with equal probability.
 */

#ifndef TURNMODEL_TRAFFIC_WORKLOAD_HPP
#define TURNMODEL_TRAFFIC_WORKLOAD_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace turnmodel {

class InjectionTrace;

/** Discrete distribution over packet lengths in flits. */
class PacketLengthDist
{
  public:
    /**
     * @param lengths Candidate packet lengths in flits.
     * @param weights Relative probabilities (same arity).
     */
    PacketLengthDist(std::vector<std::uint32_t> lengths,
                     std::vector<double> weights);

    /** The paper's workload: 10 or 200 flits, equally likely. */
    static PacketLengthDist paperBimodal();

    /** Every packet the same length. */
    static PacketLengthDist fixed(std::uint32_t length);

    /** Draw a packet length. */
    std::uint32_t sample(Rng &rng) const;

    /** Expected packet length in flits. */
    double mean() const { return mean_; }

    /** Largest possible packet length in flits. */
    std::uint32_t maxLength() const;

    std::string toString() const;

  private:
    std::vector<std::uint32_t> lengths_;
    std::vector<double> cumulative_;
    double mean_;
};

/**
 * Poisson message generation for one node: exponential inter-arrival
 * times with a mean set so the node offers @p rate flits per cycle.
 */
class ArrivalProcess
{
  public:
    /**
     * @param rate        Offered load in flits per node per cycle.
     * @param mean_length Expected packet length in flits.
     * @param rng_seeded  Node-private generator (moved in).
     */
    ArrivalProcess(double rate, double mean_length, Rng rng);

    /** Whether a new message is due at or before @p now. */
    bool due(double now) const { return next_arrival_ <= now; }

    /** Cycle time of the pending arrival (for flat due-time caches). */
    double nextDue() const { return next_arrival_; }

    /** Consume the pending arrival and schedule the next one. */
    void advance();

    /** Access the node-private generator for dest/length draws. */
    Rng &rng() { return rng_; }

  private:
    double mean_interarrival_;
    double next_arrival_;
    Rng rng_;
};

/**
 * Production-traffic knobs layered on top of the base Poisson
 * workload (all off by default, in which case generation is
 * bit-identical to the plain open-loop setup). Consumed by the
 * engines through the per-node NodeSource (traffic/source.hpp).
 */
struct WorkloadConfig
{
    /**
     * Closed-loop request/reply: delivery of a (non-reply) packet at
     * its destination enqueues a reply back to the source after
     * think_cycles, making traffic message-dependent — reply
     * generation adds dependency edges the turn-prohibition argument
     * alone does not cover (the arbitrary-dependency-graph setting
     * of Mendlovic & Matias). Replies keep flowing while stochastic
     * generation is disabled, so drain phases model the dependency
     * chain faithfully.
     */
    bool request_reply = false;

    /** Reply packet length in flits. */
    std::uint32_t reply_length = 10;

    /** Cycles between a request's delivery and its reply entering
     * the source queue (0 = the reply is staged the next cycle). */
    std::uint64_t think_cycles = 0;

    /**
     * MMPP (Markov-modulated Poisson) ON/OFF burst modulation: mean
     * dwell times, in cycles, of the per-node ON and OFF phases
     * (both exponentially distributed). During ON the node injects
     * at rate * (on + off) / on so the long-run offered load still
     * equals injection_rate; during OFF the arrival clock freezes
     * (residual inter-arrival time carried across the gap). Zero
     * (either field) keeps plain Poisson arrivals.
     */
    double burst_on_cycles = 0.0;
    double burst_off_cycles = 0.0;

    /**
     * Flash-crowd hotspot storms: for storm_duty of every
     * storm_period_cycles window (deterministic cycle arithmetic,
     * aligned at cycle 0), each freshly drawn destination is
     * redirected to the storm hotspot with probability
     * storm_fraction. Zero period disables storms.
     */
    std::uint64_t storm_period_cycles = 0;
    double storm_duty = 0.5;
    double storm_fraction = 0.0;

    /** Storm target node; -1 picks the topology's center node. */
    std::int64_t storm_hotspot = -1;

    /**
     * Deterministic trace replay: when set, stochastic generation is
     * replaced entirely by the captured records (traffic/trace.hpp)
     * — each record enters its source queue on its recorded cycle,
     * consuming no RNG. Request/reply, MMPP, and storms are ignored
     * in replay (a captured closed-loop run already contains its
     * replies as records).
     */
    std::shared_ptr<const InjectionTrace> replay;

    /** Whether deliveries must be routed back to the sources. */
    bool closedLoop() const
    {
        return request_reply && replay == nullptr;
    }

    /** Whether the MMPP modulation is active. */
    bool bursty() const
    {
        return burst_on_cycles > 0.0 && burst_off_cycles > 0.0;
    }

    /** Whether storm windows are active. */
    bool storms() const
    {
        return storm_period_cycles > 0 && storm_fraction > 0.0;
    }
};

} // namespace turnmodel

#endif // TURNMODEL_TRAFFIC_WORKLOAD_HPP
