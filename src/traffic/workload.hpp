/**
 * @file
 * Message workload generation (Glass & Ni, Section 6): messages are
 * generated at intervals drawn from a negative exponential
 * distribution, and each message is a single packet of 10 or 200
 * flits with equal probability.
 */

#ifndef TURNMODEL_TRAFFIC_WORKLOAD_HPP
#define TURNMODEL_TRAFFIC_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace turnmodel {

/** Discrete distribution over packet lengths in flits. */
class PacketLengthDist
{
  public:
    /**
     * @param lengths Candidate packet lengths in flits.
     * @param weights Relative probabilities (same arity).
     */
    PacketLengthDist(std::vector<std::uint32_t> lengths,
                     std::vector<double> weights);

    /** The paper's workload: 10 or 200 flits, equally likely. */
    static PacketLengthDist paperBimodal();

    /** Every packet the same length. */
    static PacketLengthDist fixed(std::uint32_t length);

    /** Draw a packet length. */
    std::uint32_t sample(Rng &rng) const;

    /** Expected packet length in flits. */
    double mean() const { return mean_; }

    /** Largest possible packet length in flits. */
    std::uint32_t maxLength() const;

    std::string toString() const;

  private:
    std::vector<std::uint32_t> lengths_;
    std::vector<double> cumulative_;
    double mean_;
};

/**
 * Poisson message generation for one node: exponential inter-arrival
 * times with a mean set so the node offers @p rate flits per cycle.
 */
class ArrivalProcess
{
  public:
    /**
     * @param rate        Offered load in flits per node per cycle.
     * @param mean_length Expected packet length in flits.
     * @param rng_seeded  Node-private generator (moved in).
     */
    ArrivalProcess(double rate, double mean_length, Rng rng);

    /** Whether a new message is due at or before @p now. */
    bool due(double now) const { return next_arrival_ <= now; }

    /** Cycle time of the pending arrival (for flat due-time caches). */
    double nextDue() const { return next_arrival_; }

    /** Consume the pending arrival and schedule the next one. */
    void advance();

    /** Access the node-private generator for dest/length draws. */
    Rng &rng() { return rng_; }

  private:
    double mean_interarrival_;
    double next_arrival_;
    Rng rng_;
};

} // namespace turnmodel

#endif // TURNMODEL_TRAFFIC_WORKLOAD_HPP
