/**
 * @file
 * Uniform random traffic: each message is sent to any of the other
 * nodes with equal probability (Glass & Ni, Section 6).
 */

#ifndef TURNMODEL_TRAFFIC_UNIFORM_HPP
#define TURNMODEL_TRAFFIC_UNIFORM_HPP

#include "traffic/pattern.hpp"

namespace turnmodel {

/** Uniform random traffic over all nodes other than the source. */
class UniformTraffic : public TrafficPattern
{
  public:
    /** @param topo Topology; must outlive this object. */
    explicit UniformTraffic(const Topology &topo);

    std::optional<NodeId> destination(NodeId src, Rng &rng) const override;
    std::string name() const override { return "uniform"; }
    bool isDeterministic() const override { return false; }

  private:
    const Topology &topo_;
};

} // namespace turnmodel

#endif // TURNMODEL_TRAFFIC_UNIFORM_HPP
