/**
 * @file
 * Hotspot traffic: a configurable fraction of messages target a
 * small set of hotspot nodes; the remainder are uniform. Adaptive
 * routing's claimed ability to steer around hot spots (Glass & Ni,
 * Sections 1 and 7) is exercised by this extension pattern.
 */

#ifndef TURNMODEL_TRAFFIC_HOTSPOT_HPP
#define TURNMODEL_TRAFFIC_HOTSPOT_HPP

#include "traffic/pattern.hpp"

namespace turnmodel {

/** Uniform traffic with an elevated probability of hitting hotspots. */
class HotspotTraffic : public TrafficPattern
{
  public:
    /**
     * @param topo     Topology; must outlive this object.
     * @param hotspots Nodes receiving extra traffic (non-empty).
     * @param fraction Probability that a message targets a hotspot.
     */
    HotspotTraffic(const Topology &topo, std::vector<NodeId> hotspots,
                   double fraction);

    std::optional<NodeId> destination(NodeId src, Rng &rng) const override;
    std::string name() const override;
    bool isDeterministic() const override { return false; }

    const std::vector<NodeId> &hotspots() const { return hotspots_; }

  private:
    const Topology &topo_;
    std::vector<NodeId> hotspots_;
    double fraction_;
};

} // namespace turnmodel

#endif // TURNMODEL_TRAFFIC_HOTSPOT_HPP
