#include "traffic/trace.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <iterator>
#include <istream>
#include <ostream>

#include "util/logging.hpp"

namespace turnmodel {

namespace {

constexpr char kMagic[8] = {'T', 'M', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::size_t kRecordBytes = 8 + 4 + 4 + 4;

void
putU64(char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putU32(char *out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint64_t
getU64(const char *in)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[i]))
            << (8 * i);
    return v;
}

std::uint32_t
getU32(const char *in)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[i]))
            << (8 * i);
    return v;
}

} // namespace

void
InjectionTrace::append(const InjectionRecord &rec)
{
    TM_ASSERT(records_.empty() || rec.cycle >= records_.back().cycle,
              "injection trace must be chronological");
    records_.push_back(rec);
}

bool
InjectionTrace::save(std::ostream &os) const
{
    os.write(kMagic, sizeof(kMagic));
    std::array<char, kRecordBytes> buf;
    putU64(buf.data(), static_cast<std::uint64_t>(records_.size()));
    os.write(buf.data(), 8);
    for (const InjectionRecord &rec : records_) {
        putU64(buf.data(), rec.cycle);
        putU32(buf.data() + 8, rec.src);
        putU32(buf.data() + 12, rec.dest);
        putU32(buf.data() + 16, rec.length);
        os.write(buf.data(), kRecordBytes);
    }
    return static_cast<bool>(os);
}

bool
InjectionTrace::saveFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        TM_WARN("cannot write ", path);
        return false;
    }
    return save(out);
}

bool
InjectionTrace::load(std::istream &is)
{
    records_.clear();
    char magic[sizeof(kMagic)];
    if (!is.read(magic, sizeof(magic))
        || !std::equal(std::begin(magic), std::end(magic),
                       std::begin(kMagic))) {
        return false;
    }
    std::array<char, kRecordBytes> buf;
    if (!is.read(buf.data(), 8))
        return false;
    const std::uint64_t count = getU64(buf.data());
    records_.reserve(count);
    std::uint64_t prev_cycle = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        if (!is.read(buf.data(), kRecordBytes)) {
            records_.clear();
            return false;
        }
        InjectionRecord rec;
        rec.cycle = getU64(buf.data());
        rec.src = getU32(buf.data() + 8);
        rec.dest = getU32(buf.data() + 12);
        rec.length = getU32(buf.data() + 16);
        if (rec.cycle < prev_cycle || rec.length == 0) {
            records_.clear();
            return false;
        }
        prev_cycle = rec.cycle;
        records_.push_back(rec);
    }
    return true;
}

bool
InjectionTrace::loadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        TM_WARN("cannot read ", path);
        return false;
    }
    return load(in);
}

} // namespace turnmodel
