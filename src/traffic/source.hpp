/**
 * @file
 * Per-node workload source: one object owning everything a node
 * needs to decide which packets enter its source queue on a given
 * cycle — the node-private RNG stream, the Poisson (or MMPP-
 * modulated) arrival clock, flash-crowd storm redirection, the
 * deterministic replay cursor, and the closed-loop pending-reply
 * queue. Both engines drive it identically: a flat due-time mirror
 * (nextDue) keeps the every-cycle scan cheap, and emit() appends the
 * cycle's packets in a deterministic per-node order (replies first,
 * then replayed or sampled arrivals).
 *
 * Determinism contract: with every WorkloadConfig feature off, the
 * RNG consumption sequence is bit-identical to the classic inline
 * ArrivalProcess loop (advance; destination draw; length draw —
 * self-directed destinations skip the length draw), so default
 * open-loop runs are unchanged. Every feature's extra draws come
 * from the same node-private stream, and the pending-reply queue is
 * filled by at most one delivery per node per cycle (a node has one
 * ejection channel), so emission order is invariant over the shard
 * count.
 */

#ifndef TURNMODEL_TRAFFIC_SOURCE_HPP
#define TURNMODEL_TRAFFIC_SOURCE_HPP

#include <cstdint>
#include <deque>
#include <vector>

#include "topology/coordinates.hpp"
#include "traffic/pattern.hpp"
#include "traffic/trace.hpp"
#include "traffic/workload.hpp"
#include "util/rng.hpp"

namespace turnmodel {

/** One packet a source wants queued this cycle. */
struct SourcedPacket
{
    NodeId src = 0;
    NodeId dest = 0;
    std::uint32_t length = 0;
    bool reply = false;   ///< Closed-loop reply (never re-replied).
};

/** The workload generator of one node. */
class NodeSource
{
  public:
    /**
     * @param node     This source's node id.
     * @param rate     Offered load in flits per node per cycle;
     *                 <= 0 disables stochastic arrivals (replies
     *                 and replay still flow).
     * @param lengths  Packet length distribution; must outlive this.
     * @param pattern  Destination pattern; must outlive this.
     * @param workload Production-traffic knobs; must outlive this.
     * @param hotspot  Resolved storm target node.
     * @param replay   This node's replay records, chronological
     *                 (empty unless workload.replay is set).
     * @param rng      Node-private generator (moved in).
     */
    NodeSource(NodeId node, double rate, const PacketLengthDist &lengths,
               const TrafficPattern &pattern,
               const WorkloadConfig &workload, NodeId hotspot,
               std::vector<InjectionRecord> replay, Rng rng);

    /**
     * Earliest cycle this source can emit anything: the pending
     * reply head, and — only when @p arrivals_enabled — the arrival
     * clock or replay cursor. Infinity when idle; suitable for a
     * flat due-time cache (emissions are never due earlier than the
     * last reported value).
     */
    double nextDue(bool arrivals_enabled) const;

    /**
     * Append every packet due at or before @p now to @p out:
     * matured replies first, then replayed records or sampled
     * arrivals (the latter only when @p arrivals_enabled).
     */
    void emit(std::uint64_t now, bool arrivals_enabled,
              std::vector<SourcedPacket> &out);

    /**
     * Queue a closed-loop reply due at cycle @p due (callers pass
     * delivery cycle + 1 + think time, so due cycles are
     * non-decreasing).
     */
    void scheduleReply(std::uint64_t due, NodeId dest,
                       std::uint32_t length);

    /** Replies scheduled but not yet emitted. */
    std::size_t pendingReplies() const { return replies_.size(); }

    /** Whether the MMPP phase is currently ON (testing hook). */
    bool burstOn() const { return on_; }

  private:
    /** Draw destination (and storm redirect, and length) for one
     * arrival at cycle @p now; appends unless self-directed. */
    void stageArrival(std::uint64_t now,
                      std::vector<SourcedPacket> &out);
    /** Whether cycle @p now falls inside a storm window. */
    bool stormActive(std::uint64_t now) const;

    struct PendingReply
    {
        std::uint64_t due;
        NodeId dest;
        std::uint32_t length;
    };

    NodeId node_;
    const PacketLengthDist &lengths_;
    const TrafficPattern &pattern_;
    const WorkloadConfig &workload_;
    Rng rng_;

    // Arrival clock (plain Poisson or MMPP-modulated).
    bool has_arrivals_ = false;
    double mean_ia_ = 0.0;        ///< Mean inter-arrival while ON.
    double next_arrival_ = 0.0;
    bool mmpp_ = false;
    bool on_ = true;              ///< Current MMPP phase.
    double phase_end_ = 0.0;      ///< When the current phase ends.

    // Storms.
    bool storm_applies_ = false;  ///< Storms on and node != hotspot.
    NodeId hotspot_ = 0;
    std::uint64_t storm_window_ = 0;  ///< Active prefix of a period.

    // Replay.
    std::vector<InjectionRecord> replay_;
    std::size_t replay_cursor_ = 0;

    std::deque<PendingReply> replies_;
};

/**
 * Build one NodeSource per node — the construction path both engines
 * share. Resolves the storm hotspot (negative = the center node
 * num_nodes / 2), splits the replay trace into per-node record lists,
 * and derives each node's RNG from the master @p seed with the same
 * stream ids (v + 1) the classic ArrivalProcess loop used.
 */
std::vector<NodeSource> buildNodeSources(NodeId num_nodes, double rate,
                                         const PacketLengthDist &lengths,
                                         const TrafficPattern &pattern,
                                         const WorkloadConfig &workload,
                                         std::uint64_t seed);

} // namespace turnmodel

#endif // TURNMODEL_TRAFFIC_SOURCE_HPP
