#include "traffic/hotspot.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace turnmodel {

HotspotTraffic::HotspotTraffic(const Topology &topo,
                               std::vector<NodeId> hotspots,
                               double fraction)
    : topo_(topo), hotspots_(std::move(hotspots)), fraction_(fraction)
{
    TM_ASSERT(!hotspots_.empty(), "hotspot set may not be empty");
    TM_ASSERT(fraction_ >= 0.0 && fraction_ <= 1.0,
              "hotspot fraction must be a probability");
    for (NodeId h : hotspots_)
        TM_ASSERT(h < topo.numNodes(), "hotspot node out of range");
}

std::optional<NodeId>
HotspotTraffic::destination(NodeId src, Rng &rng) const
{
    if (rng.nextBool(fraction_)) {
        const NodeId d = hotspots_[rng.nextBounded(hotspots_.size())];
        if (d != src)
            return d;
        // A hotspot drawing its own hotspot falls through to uniform.
    }
    const NodeId n = topo_.numNodes();
    NodeId d = static_cast<NodeId>(rng.nextBounded(n - 1));
    if (d >= src)
        ++d;
    return d;
}

std::string
HotspotTraffic::name() const
{
    std::ostringstream os;
    os << "hotspot:" << fraction_;
    return os.str();
}

} // namespace turnmodel
