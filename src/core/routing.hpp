/**
 * @file
 * The routing-function interface shared by the analytical layer (the
 * deadlock checker, adaptiveness counters) and the wormhole simulator.
 * A routing algorithm maps (current node, arrival direction,
 * destination) to the set of output directions the packet's header may
 * take; the simulator's output-selection policy picks among them.
 *
 * Decisions are DirectionSet bitmask values (core/direction_set.hpp):
 * routeSet() is the primary virtual every implementation provides,
 * allocation free; the std::vector route() form is a thin non-virtual
 * adapter kept for compatibility with older call sites and tests.
 */

#ifndef TURNMODEL_CORE_ROUTING_HPP
#define TURNMODEL_CORE_ROUTING_HPP

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/direction_set.hpp"
#include "topology/topology.hpp"

namespace turnmodel {

/**
 * Abstract routing function.
 *
 * Contract: routeSet() is never called with current == dest (delivery
 * is the caller's job), every returned direction corresponds to an
 * existing hop, and the returned set must be non-empty for every
 * state the algorithm can actually steer a packet into — otherwise
 * the algorithm is not routing-complete and the packet would stall
 * forever.
 */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /**
     * Candidate output directions.
     *
     * @param current Node holding the packet's header flit.
     * @param in_dir  Direction the packet was travelling when it
     *                entered @p current; nullopt for a freshly
     *                injected packet.
     * @param dest    Destination node.
     */
    virtual DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const = 0;

    /**
     * Compatibility adapter: routeSet() materialized as a vector in
     * ascending direction-id order. Prefer routeSet() anywhere
     * performance matters — this form heap-allocates per call.
     */
    std::vector<Direction>
    route(NodeId current, std::optional<Direction> in_dir, NodeId dest)
        const
    {
        return routeSet(current, in_dir, dest).toVector();
    }

    /** Algorithm name as used in the paper ("xy", "west-first", ...). */
    virtual std::string name() const = 0;

    /** The topology this instance routes on. */
    virtual const Topology &topology() const = 0;

    /** Whether every offered hop lies on a shortest path. */
    virtual bool isMinimal() const = 0;

    /**
     * Whether routeSet() actually reads in_dir. Input-independent
     * algorithms admit a simpler shortest-path count (memoized on the
     * node alone) and a collapsed compiled-table snapshot.
     */
    virtual bool isInputDependent() const { return false; }
};

/**
 * Directions that strictly reduce the distance to @p dest — the
 * "profitable" hops of minimal routing. For tori both ways around a
 * ring are returned when they tie.
 */
DirectionSet
minimalDirectionSet(const Topology &topo, NodeId current, NodeId dest);

/** Vector-form adapter of minimalDirectionSet (id order). */
std::vector<Direction>
minimalDirections(const Topology &topo, NodeId current, NodeId dest);

/** True when moving from @p current along @p dir reduces distance. */
bool isProfitable(const Topology &topo, NodeId current, Direction dir,
                  NodeId dest);

using RoutingPtr = std::unique_ptr<RoutingAlgorithm>;

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_HPP
