#include "core/direction_set.hpp"

namespace turnmodel {

std::string
toString(DirectionSet set)
{
    std::string out = "{";
    bool sep = false;
    for (Direction d : set) {
        if (sep)
            out += ", ";
        out += directionName(d);
        sep = true;
    }
    out += "}";
    return out;
}

} // namespace turnmodel
