/**
 * @file
 * Turns: ordered pairs of travel directions. The turn model (Glass &
 * Ni, Section 2) classifies turns as 90-degree (different dimension),
 * 180-degree (opposite direction), or 0-degree (same physical
 * direction via a different virtual channel), and analyzes the cycles
 * the 90-degree turns can form.
 */

#ifndef TURNMODEL_CORE_TURN_HPP
#define TURNMODEL_CORE_TURN_HPP

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topology/direction.hpp"

namespace turnmodel {

/** Classification of a turn by the angle between its directions. */
enum class TurnKind
{
    Ninety,      ///< Change of dimension.
    OneEighty,   ///< Reversal within one dimension.
    Zero,        ///< Same direction (multi-channel topologies only).
};

/** Rotational sense of a 90-degree turn within its plane. */
enum class TurnSense
{
    Clockwise,          ///< A "right" turn in the paper's figures.
    Counterclockwise,   ///< A "left" turn.
};

/** An ordered change of travel direction. */
struct Turn
{
    Direction from;
    Direction to;

    constexpr Turn() = default;
    constexpr Turn(Direction f, Direction t) : from(f), to(t) {}

    /** Dense id: from.id() * 2n + to.id() (given n dimensions). */
    int id(int num_dims) const;

    /** Inverse of id(). */
    static Turn fromId(int id, int num_dims);

    /** The turn's angle classification. */
    TurnKind kind() const;

    /**
     * Sense of a 90-degree turn. The plane (i, j) with i < j is
     * oriented with +i as "east" and +j as "north"; panics for
     * non-90-degree turns.
     */
    TurnSense sense() const;

    /** "east->north" rendering. */
    std::string toString() const;

    friend constexpr auto operator<=>(const Turn &, const Turn &) = default;
};

/**
 * Inverse of Turn::toString: parse "east->north" (or "+d2->-d0")
 * into a turn over @p num_dims dimensions. Returns nullopt for
 * malformed strings or out-of-range dimensions.
 */
std::optional<Turn> turnFromString(const std::string &text, int num_dims);

/**
 * All 4n(n-1) 90-degree turns of an n-dimensional network, in id
 * order.
 */
std::vector<Turn> all90DegreeTurns(int num_dims);

/** All 2n 180-degree turns. */
std::vector<Turn> all180DegreeTurns(int num_dims);

/** Number of 90-degree turns, 4n(n-1). */
int count90DegreeTurns(int num_dims);

} // namespace turnmodel

#endif // TURNMODEL_CORE_TURN_HPP
