#include "core/turn.hpp"

#include "util/logging.hpp"

namespace turnmodel {

int
Turn::id(int num_dims) const
{
    const int dirs = 2 * num_dims;
    return static_cast<int>(from.id()) * dirs + static_cast<int>(to.id());
}

Turn
Turn::fromId(int id, int num_dims)
{
    const int dirs = 2 * num_dims;
    TM_ASSERT(id >= 0 && id < dirs * dirs, "turn id out of range");
    return Turn(Direction::fromId(static_cast<DirId>(id / dirs)),
                Direction::fromId(static_cast<DirId>(id % dirs)));
}

TurnKind
Turn::kind() const
{
    if (from.dim != to.dim)
        return TurnKind::Ninety;
    return from.positive == to.positive ? TurnKind::Zero
                                        : TurnKind::OneEighty;
}

TurnSense
Turn::sense() const
{
    TM_ASSERT(kind() == TurnKind::Ninety,
              "sense() is defined for 90-degree turns only");
    // Orient the plane (i, j), i < j, with +i east and +j north. In
    // that frame a counterclockwise (left) turn takes east->north,
    // north->west, west->south, or south->east.
    const bool from_is_low_dim = from.dim < to.dim;
    // Map onto the 2D case: low dim acts as x, high dim acts as y.
    const Direction low = from_is_low_dim ? from : to;
    const Direction high = from_is_low_dim ? to : from;
    bool ccw;
    if (from_is_low_dim) {
        // x -> y: east->north (+,+) and west->south (-,-) are CCW.
        ccw = low.positive == high.positive;
    } else {
        // y -> x: north->west (+,-) and south->east (-,+) are CCW.
        ccw = low.positive != high.positive;
    }
    return ccw ? TurnSense::Counterclockwise : TurnSense::Clockwise;
}

std::string
Turn::toString() const
{
    return directionName(from) + "->" + directionName(to);
}

std::optional<Turn>
turnFromString(const std::string &text, int num_dims)
{
    const std::size_t arrow = text.find("->");
    if (arrow == std::string::npos)
        return std::nullopt;
    const auto from = directionFromName(text.substr(0, arrow), num_dims);
    const auto to = directionFromName(text.substr(arrow + 2), num_dims);
    if (!from || !to)
        return std::nullopt;
    return Turn(*from, *to);
}

std::vector<Turn>
all90DegreeTurns(int num_dims)
{
    std::vector<Turn> turns;
    turns.reserve(static_cast<std::size_t>(count90DegreeTurns(num_dims)));
    for (Direction f : allDirections(num_dims)) {
        for (Direction t : allDirections(num_dims)) {
            if (f.dim != t.dim)
                turns.emplace_back(f, t);
        }
    }
    return turns;
}

std::vector<Turn>
all180DegreeTurns(int num_dims)
{
    std::vector<Turn> turns;
    for (Direction f : allDirections(num_dims))
        turns.emplace_back(f, f.opposite());
    return turns;
}

int
count90DegreeTurns(int num_dims)
{
    return 4 * num_dims * (num_dims - 1);
}

} // namespace turnmodel
