/**
 * @file
 * Channel numbering schemes used in the paper's deadlock-freedom
 * proofs. Dally & Seitz showed a routing algorithm is deadlock free
 * if the channels can be numbered so every packet is routed along
 * strictly decreasing (or increasing) numbers. This module provides
 *
 *  - the explicit Theorem 5 numbering for negative-first routing on
 *    n-dimensional meshes (positive channels K-n+X, negative channels
 *    K-n-X, X the coordinate sum of the source node),
 *  - a Theorem 2-style two-digit numbering for west-first routing on
 *    2D meshes, and
 *  - a verifier that checks a numbering is strictly monotone along
 *    every realizable dependency of a routing algorithm.
 */

#ifndef TURNMODEL_CORE_NUMBERING_HPP
#define TURNMODEL_CORE_NUMBERING_HPP

#include <cstdint>
#include <vector>

#include "core/channel_dependency.hpp"
#include "core/routing.hpp"
#include "topology/channel.hpp"

namespace turnmodel {

/** An assignment of a number to every channel, indexed by channel id. */
using ChannelNumbering = std::vector<std::int64_t>;

/**
 * Theorem 5 numbering for an n-dimensional mesh: each channel leaving
 * a node with coordinate sum X in a positive direction is numbered
 * K - n + X, and in a negative direction K - n - X, where K is the
 * sum of the radices. Negative-first routing follows strictly
 * increasing numbers under this scheme.
 */
ChannelNumbering theorem5Numbering(const Topology &mesh);

/**
 * A Theorem 2-style numbering for west-first routing on a 2D mesh:
 * westward channels get higher numbers the farther east they start
 * (they are used first, in decreasing order going west), and all
 * other channels get lower numbers that decrease as routing
 * progresses. West-first routing follows strictly decreasing numbers.
 *
 * Construction (two digits a, b; number = a*n + b): a westward
 * channel leaving column x has a = 3m + x (above every other
 * channel, decreasing going west); an eastward channel leaving
 * column x has a = 3(m-1-x); north/south channels leaving (x, y)
 * have a = 3(m-1-x) + 1 with b = n-1-y (north) or b = y (south), so
 * straight runs decrease b while every turn the algorithm allows
 * strictly decreases a.
 */
ChannelNumbering westFirstNumbering(const Topology &mesh);

/** Direction of monotonicity a numbering must satisfy. */
enum class Monotonic
{
    StrictlyIncreasing,
    StrictlyDecreasing,
};

/**
 * Verify that every realizable dependency edge c1 -> c2 of
 * @p routing satisfies the monotonicity: number[c2] > number[c1]
 * (increasing) or number[c2] < number[c1] (decreasing).
 *
 * @return true when the numbering certifies deadlock freedom.
 */
bool verifyMonotone(const RoutingAlgorithm &routing,
                    const ChannelNumbering &numbering, Monotonic direction);

} // namespace turnmodel

#endif // TURNMODEL_CORE_NUMBERING_HPP
