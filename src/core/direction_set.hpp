/**
 * @file
 * Allocation-free routing-decision representation. A routing function
 * answers "which output directions may this header take" — a subset
 * of the 2n directions of an n-dimensional network — so the canonical
 * representation is a fixed-width bitmask over dense direction ids,
 * not a heap-allocated vector. DirectionSet is a trivially copyable
 * value type with set algebra and id-order iteration; every layer
 * that consumes routing decisions (the simulator's output selection,
 * the channel-dependency builder, the adaptiveness counters, the
 * synthesis verifier) operates on it directly, and a whole routing
 * function can be snapshotted into a dense table of DirectionSets
 * (core/routing/compiled.hpp) for O(1) branch-free lookups.
 */

#ifndef TURNMODEL_CORE_DIRECTION_SET_HPP
#define TURNMODEL_CORE_DIRECTION_SET_HPP

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "topology/direction.hpp"

namespace turnmodel {

/**
 * A set of directions, one bit per dense direction id. 32 bits cover
 * networks of up to 16 dimensions — twice the largest topology in the
 * repertoire — in a register-sized, trivially copyable value.
 */
class DirectionSet
{
  public:
    using Bits = std::uint32_t;

    /** Largest direction id (exclusive) a set can hold. */
    static constexpr int kMaxDirs = 32;

    /** The empty set. */
    constexpr DirectionSet() = default;

    constexpr DirectionSet(std::initializer_list<Direction> dirs)
    {
        for (Direction d : dirs)
            insert(d);
    }

    /** Reconstruct from a raw bit pattern (inverse of bits()). */
    static constexpr DirectionSet fromBits(Bits bits)
    {
        DirectionSet s;
        s.bits_ = bits;
        return s;
    }

    /** The set holding exactly @p d. */
    static constexpr DirectionSet single(Direction d)
    {
        return fromBits(bit(d.id()));
    }

    /** All 2n directions of an n-dimensional network. */
    static constexpr DirectionSet all(int num_dims)
    {
        return fromBits(static_cast<Bits>(
            (std::uint64_t{1} << (2 * num_dims)) - 1));
    }

    /** Collect a direction vector into a set. */
    static DirectionSet of(const std::vector<Direction> &dirs)
    {
        DirectionSet s;
        for (Direction d : dirs)
            s.insert(d);
        return s;
    }

    /** Raw bit pattern, bit i = direction id i. */
    constexpr Bits raw() const { return bits_; }

    constexpr bool empty() const { return bits_ == 0; }

    /** Number of directions in the set. */
    constexpr int size() const { return std::popcount(bits_); }

    constexpr bool contains(Direction d) const
    {
        return (bits_ & bit(d.id())) != 0;
    }

    constexpr void insert(Direction d) { bits_ |= bit(d.id()); }

    constexpr void erase(Direction d) { bits_ &= ~bit(d.id()); }

    /**
     * The member with the lowest direction id. Precondition: the set
     * is non-empty.
     */
    constexpr Direction first() const
    {
        return Direction::fromId(static_cast<DirId>(
            std::countr_zero(bits_)));
    }

    /**
     * The member with the highest direction id. Precondition: the
     * set is non-empty.
     */
    constexpr Direction last() const
    {
        return Direction::fromId(static_cast<DirId>(
            kMaxDirs - 1 - std::countl_zero(bits_)));
    }

    /**
     * The @p k-th member in ascending id order, k in [0, size()).
     */
    constexpr Direction nth(int k) const
    {
        Bits rest = bits_;
        for (int i = 0; i < k; ++i)
            rest &= rest - 1;   // Clear the lowest set bit.
        return Direction::fromId(static_cast<DirId>(
            std::countr_zero(rest)));
    }

    // ----- set algebra -------------------------------------------------

    constexpr DirectionSet operator|(DirectionSet o) const
    {
        return fromBits(bits_ | o.bits_);
    }
    constexpr DirectionSet operator&(DirectionSet o) const
    {
        return fromBits(bits_ & o.bits_);
    }
    /** Set difference: members of this set not in @p o. */
    constexpr DirectionSet operator-(DirectionSet o) const
    {
        return fromBits(bits_ & ~o.bits_);
    }
    constexpr DirectionSet &operator|=(DirectionSet o)
    {
        bits_ |= o.bits_;
        return *this;
    }
    constexpr DirectionSet &operator&=(DirectionSet o)
    {
        bits_ &= o.bits_;
        return *this;
    }
    constexpr DirectionSet &operator-=(DirectionSet o)
    {
        bits_ &= ~o.bits_;
        return *this;
    }

    friend constexpr bool operator==(DirectionSet,
                                     DirectionSet) = default;

    // ----- iteration (ascending direction-id order) --------------------

    class iterator
    {
      public:
        using value_type = Direction;

        constexpr explicit iterator(Bits rest) : rest_(rest) {}

        constexpr Direction operator*() const
        {
            return Direction::fromId(static_cast<DirId>(
                std::countr_zero(rest_)));
        }
        constexpr iterator &operator++()
        {
            rest_ &= rest_ - 1;
            return *this;
        }
        friend constexpr bool operator==(iterator, iterator) = default;

      private:
        Bits rest_;
    };

    constexpr iterator begin() const { return iterator(bits_); }
    constexpr iterator end() const { return iterator(0); }

    /** Members in ascending id order (the adapter for legacy code). */
    std::vector<Direction> toVector() const
    {
        std::vector<Direction> dirs;
        dirs.reserve(static_cast<std::size_t>(size()));
        for (Direction d : *this)
            dirs.push_back(d);
        return dirs;
    }

  private:
    static constexpr Bits bit(DirId id)
    {
        return Bits{1} << id;
    }

    Bits bits_ = 0;
};

static_assert(sizeof(DirectionSet) == sizeof(DirectionSet::Bits),
              "DirectionSet must stay register sized");

/** Listing like "{east, north}" for messages and test failures. */
std::string toString(DirectionSet set);

} // namespace turnmodel

#endif // TURNMODEL_CORE_DIRECTION_SET_HPP
