/**
 * @file
 * Channel-dependency-graph (CDG) deadlock analysis after Dally &
 * Seitz: a wormhole routing algorithm is deadlock free iff the graph
 * whose vertices are the network channels, with an edge c1 -> c2
 * whenever a packet holding c1 can request c2 next, is acyclic.
 *
 * The graph is built from *realizable* dependencies only: for each
 * destination, channel states are explored forward from every
 * injection point, so a dependency appears only if some packet can
 * actually be steered into it. This machine-checks Theorems 2-5 on
 * concrete networks and demonstrates the Figure 4 counterexamples.
 */

#ifndef TURNMODEL_CORE_CHANNEL_DEPENDENCY_HPP
#define TURNMODEL_CORE_CHANNEL_DEPENDENCY_HPP

#include <optional>
#include <vector>

#include "core/routing.hpp"
#include "topology/channel.hpp"

namespace turnmodel {

/** The channel dependency graph of one routing algorithm. */
class ChannelDependencyGraph
{
  public:
    /**
     * Build the realizable CDG of @p routing over its topology.
     *
     * @param routing Routing algorithm to analyze.
     */
    explicit ChannelDependencyGraph(const RoutingAlgorithm &routing);

    /** The channel space the graph is indexed by. */
    const ChannelSpace &channels() const { return space_; }

    /** Number of dependency edges. */
    std::size_t numEdges() const;

    /** Channels that c directly depends on (may be requested next). */
    const std::vector<ChannelId> &successors(ChannelId c) const;

    /** Whether the graph is acyclic (= routing is deadlock free). */
    bool isAcyclic() const;

    /**
     * A witness cycle when one exists: a sequence of channels
     * c_0 -> c_1 -> ... -> c_0; empty when the graph is acyclic.
     */
    std::vector<ChannelId> findCycle() const;

    /**
     * A topological numbering of the channels such that every
     * dependency strictly decreases the number — the existence of
     * which is exactly the Dally-Seitz deadlock-freedom criterion.
     * Empty when the graph has a cycle.
     */
    std::vector<std::uint32_t> topologicalNumbering() const;

  private:
    void addEdgesForDestination(const RoutingAlgorithm &routing,
                                NodeId dest);

    ChannelSpace space_;
    /** Adjacency (successor) lists indexed by channel id. */
    std::vector<std::vector<ChannelId>> succ_;
};

/**
 * Convenience check: whether a routing algorithm is deadlock free on
 * its topology per the realizable-CDG criterion.
 */
bool isDeadlockFree(const RoutingAlgorithm &routing);

} // namespace turnmodel

#endif // TURNMODEL_CORE_CHANNEL_DEPENDENCY_HPP
