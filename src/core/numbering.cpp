#include "core/numbering.hpp"

#include <numeric>

#include "util/logging.hpp"

namespace turnmodel {

ChannelNumbering
theorem5Numbering(const Topology &mesh)
{
    const ChannelSpace space(mesh);
    const int n = mesh.numDims();
    const std::int64_t big_k = std::accumulate(
        mesh.shape().begin(), mesh.shape().end(), std::int64_t{0});

    ChannelNumbering numbering(space.idBound(), 0);
    for (ChannelId ch : space.channels()) {
        const Coords c = mesh.coords(space.source(ch));
        const std::int64_t x = std::accumulate(c.begin(), c.end(),
                                               std::int64_t{0});
        const Direction d = space.direction(ch);
        numbering[ch] = d.positive ? big_k - n + x : big_k - n - x;
    }
    return numbering;
}

ChannelNumbering
westFirstNumbering(const Topology &mesh)
{
    TM_ASSERT(mesh.numDims() == 2,
              "the Theorem 2 numbering applies to 2D meshes");
    const ChannelSpace space(mesh);
    const std::int64_t m = mesh.radix(0);
    const std::int64_t n = mesh.radix(1);

    ChannelNumbering numbering(space.idBound(), 0);
    for (ChannelId ch : space.channels()) {
        const Coords c = mesh.coords(space.source(ch));
        const std::int64_t x = c[0];
        const std::int64_t y = c[1];
        const Direction d = space.direction(ch);
        std::int64_t a;
        std::int64_t b = 0;
        if (d == dir2d::West) {
            a = 3 * m + x;
        } else if (d == dir2d::East) {
            a = 3 * (m - 1 - x);
        } else if (d == dir2d::North) {
            a = 3 * (m - 1 - x) + 1;
            b = n - 1 - y;
        } else {
            a = 3 * (m - 1 - x) + 1;
            b = y;
        }
        numbering[ch] = a * n + b;
    }
    return numbering;
}

bool
verifyMonotone(const RoutingAlgorithm &routing,
               const ChannelNumbering &numbering, Monotonic direction)
{
    const ChannelDependencyGraph cdg(routing);
    TM_ASSERT(numbering.size() >= cdg.channels().idBound(),
              "numbering does not cover the channel space");
    for (ChannelId c1 : cdg.channels().channels()) {
        for (ChannelId c2 : cdg.successors(c1)) {
            const bool ok = direction == Monotonic::StrictlyIncreasing
                ? numbering[c2] > numbering[c1]
                : numbering[c2] < numbering[c1];
            if (!ok)
                return false;
        }
    }
    return true;
}

} // namespace turnmodel
