/**
 * @file
 * Sets of allowed turns. A routing algorithm derived from the turn
 * model is characterized by which turns it permits; prohibiting one
 * turn from each abstract cycle yields deadlock freedom (Glass & Ni,
 * Section 2). Factories construct the allowed-turn sets of the
 * paper's named algorithms for any dimensionality.
 */

#ifndef TURNMODEL_CORE_TURN_SET_HPP
#define TURNMODEL_CORE_TURN_SET_HPP

#include <optional>
#include <string>
#include <vector>

#include "core/turn.hpp"

namespace turnmodel {

/**
 * The set of turns a routing algorithm may use, over the 2n x 2n
 * ordered direction pairs of an n-dimensional network. 0-degree and
 * 180-degree "turns" are representable so that Step 6 of the model
 * (re-admitting them where safe) can be expressed.
 */
class TurnSet
{
  public:
    /** Empty set (no turns allowed) for @p num_dims dimensions. */
    explicit TurnSet(int num_dims);

    int numDims() const { return num_dims_; }

    /** Allow a turn. */
    void allow(Turn t);

    /** Prohibit a turn. */
    void prohibit(Turn t);

    bool isAllowed(Turn t) const;

    /** Allow every 90-degree turn. */
    void allowAll90();

    /** Allow every 0-degree (straight-through) transition. */
    void allowAllStraight();

    /** Allow every 180-degree turn. */
    void allowAll180();

    /** Number of allowed 90-degree turns. */
    int countAllowed90() const;

    /** Number of prohibited 90-degree turns. */
    int countProhibited90() const;

    /** All prohibited 90-degree turns. */
    std::vector<Turn> prohibited90() const;

    /** All allowed 90-degree turns. */
    std::vector<Turn> allowed90() const;

    /** Listing of prohibited 90-degree turns for messages. */
    std::string toString() const;

    /**
     * Canonical machine-readable spec of the prohibited 90-degree
     * turns, in turn-id order, e.g. "north->west,south->west".
     * Suitable for embedding in routing-factory names; the inverse
     * is fromProhibitedSpec.
     */
    std::string prohibitedSpec() const;

    /**
     * Build the set that allows every 90-degree turn and straight
     * travel except the comma-separated turns in @p spec (the
     * prohibitedSpec format). Returns nullopt when the spec is
     * malformed, names a non-90-degree turn, or references a
     * dimension outside [0, num_dims).
     */
    static std::optional<TurnSet> fromProhibitedSpec(
        const std::string &spec, int num_dims);

    bool operator==(const TurnSet &other) const = default;

    // --- Factories for the paper's algorithms -----------------------

    /**
     * Dimension-order (xy / e-cube) turn set: only turns from a lower
     * dimension to a higher dimension are allowed (plus straight
     * travel). Nonadaptive when used with minimal routing.
     */
    static TurnSet dimensionOrder(int num_dims);

    /** West-first (2D): prohibits the two turns to the west. */
    static TurnSet westFirst();

    /** North-last (2D): prohibits the two turns out of north. */
    static TurnSet northLast();

    /**
     * Negative-first (n-D): prohibits every turn from a positive
     * direction to a negative direction.
     */
    static TurnSet negativeFirst(int num_dims);

    /**
     * All-but-one-negative-first (n-D analog of west-first):
     * prohibits turns into the negative directions of dimensions
     * 0..n-2 from any direction outside that phase-one set.
     */
    static TurnSet allButOneNegativeFirst(int num_dims);

    /**
     * All-but-one-positive-last (n-D analog of north-last):
     * prohibits turns out of the phase-two set (positive directions
     * of dimensions 1..n-1) back into phase one.
     */
    static TurnSet allButOnePositiveLast(int num_dims);

    /**
     * The 2D set that prohibits exactly the two given turns and
     * allows the other six 90-degree turns plus straight travel.
     */
    static TurnSet twoProhibited2D(Turn a, Turn b);

  private:
    int turnIndex(Turn t) const;

    int num_dims_;
    std::vector<bool> allowed_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_TURN_SET_HPP
