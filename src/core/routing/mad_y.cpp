#include "core/routing/mad_y.hpp"

#include "util/logging.hpp"

namespace turnmodel {

TurnSet
madYTurnSet()
{
    // Virtual dimensions: 0 = x, 1 = y1, 2 = y2.
    const auto in_a = [](Direction d) {
        // A = {W, N1, S1}: westward travel plus the first y pair.
        return (d.dim == 0 && !d.positive) || d.dim == 1;
    };
    TurnSet set(3);
    for (Turn t : all90DegreeTurns(3)) {
        // Once a packet leaves A (is on E, N2, or S2) it may not
        // return.
        if (!(in_a(t.to) && !in_a(t.from)))
            set.allow(t);
    }
    set.allowAllStraight();
    return set;
}

MadYRouting::MadYRouting(const VirtualizedMesh &mesh, bool minimal)
{
    TM_ASSERT(mesh.numPhysicalDims() == 2 && mesh.vcsOf(0) == 1 &&
                  mesh.vcsOf(1) == 2,
              "mad-y requires the double-y virtualized mesh");
    impl_ = std::make_unique<TurnTableRouting>(
        mesh, madYTurnSet(), minimal,
        minimal ? "mad-y" : "mad-y-nonminimal");
}

DirectionSet
MadYRouting::routeSet(NodeId current, std::optional<Direction> in_dir,
                      NodeId dest) const
{
    return impl_->routeSet(current, in_dir, dest);
}

std::string
MadYRouting::name() const
{
    return impl_->name();
}

const Topology &
MadYRouting::topology() const
{
    return impl_->topology();
}

bool
MadYRouting::isMinimal() const
{
    return impl_->isMinimal();
}

} // namespace turnmodel
