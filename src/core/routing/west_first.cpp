#include "core/routing/west_first.hpp"

#include "util/logging.hpp"

namespace turnmodel {

WestFirstRouting::WestFirstRouting(const Topology &topo)
    : topo_(topo)
{
    TM_ASSERT(topo.numDims() == 2, "west-first routing is defined on 2D");
}

DirectionSet
WestFirstRouting::routeSet(NodeId current, std::optional<Direction>,
                           NodeId dest) const
{
    const Coords cur = topo_.coords(current);
    const Coords dst = topo_.coords(dest);
    // Phase one: all westward hops happen before anything else.
    if (dst[0] < cur[0])
        return DirectionSet::single(dir2d::West);
    // Phase two: fully adaptive among the remaining profitable
    // directions (south, east, north).
    DirectionSet dirs;
    if (dst[1] < cur[1])
        dirs.insert(dir2d::South);
    if (dst[0] > cur[0])
        dirs.insert(dir2d::East);
    if (dst[1] > cur[1])
        dirs.insert(dir2d::North);
    TM_ASSERT(!dirs.empty(), "routeSet() called with current == dest");
    return dirs;
}

} // namespace turnmodel
