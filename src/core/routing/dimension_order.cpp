#include "core/routing/dimension_order.hpp"

#include "util/logging.hpp"

namespace turnmodel {

DimensionOrderRouting::DimensionOrderRouting(const Topology &topo)
    : topo_(topo)
{
}

DirectionSet
DimensionOrderRouting::routeSet(NodeId current, std::optional<Direction>,
                                NodeId dest) const
{
    const Coords cur = topo_.coords(current);
    const Coords dst = topo_.coords(dest);
    for (std::size_t d = 0; d < cur.size(); ++d) {
        if (cur[d] == dst[d])
            continue;
        const Direction dir(static_cast<std::uint8_t>(d), dst[d] > cur[d]);
        TM_ASSERT(topo_.neighbor(current, dir).has_value(),
                  "dimension-order hop missing from topology");
        return DirectionSet::single(dir);
    }
    TM_PANIC("routeSet() called with current == dest");
}

std::string
DimensionOrderRouting::name() const
{
    if (topo_.numDims() == 2)
        return "xy";
    bool all_binary = true;
    for (int d = 0; d < topo_.numDims(); ++d)
        all_binary = all_binary && topo_.radix(d) == 2;
    return all_binary ? "e-cube" : "dimension-order";
}

} // namespace turnmodel
