/**
 * @file
 * Negative-first partially adaptive routing for n-dimensional meshes
 * (Glass & Ni, Sections 3.3 and 4.1): route a packet first adaptively
 * in the negative directions, then adaptively in the positive
 * directions. Prohibits every turn from a positive to a negative
 * direction; deadlock free by Theorem 5's channel numbering.
 */

#ifndef TURNMODEL_CORE_ROUTING_NEGATIVE_FIRST_HPP
#define TURNMODEL_CORE_ROUTING_NEGATIVE_FIRST_HPP

#include "core/routing.hpp"

namespace turnmodel {

/** Minimal negative-first routing on an n-dimensional mesh. */
class NegativeFirstRouting : public RoutingAlgorithm
{
  public:
    /** @param topo An n-dimensional mesh; must outlive this object. */
    explicit NegativeFirstRouting(const Topology &topo);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override { return "negative-first"; }
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return true; }

  private:
    const Topology &topo_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_NEGATIVE_FIRST_HPP
