/**
 * @file
 * Fully adaptive routing from the turn model plus one extra virtual
 * channel — the result Glass & Ni announce as forthcoming work [18]
 * ("Maximally fully adaptive routing in 2D meshes"): double only the
 * y channels of a 2D mesh and apply the turn model to the six
 * virtual directions W, E, N1, S1, N2, S2.
 *
 * Partition the virtual directions into A = {W, N1, S1} and
 * B = {E, N2, S2} and prohibit every turn from B back into A. Within
 * A the abstract cycles of planes (x, y1) lack E, within B those of
 * (x, y2) lack W, and the (y1, y2) cycles all need a B->A turn, so
 * every cycle is broken. A packet that still needs westward hops
 * routes fully adaptively on A; once its westward needs are done it
 * routes fully adaptively on B — every shortest path of the physical
 * mesh is available (S = S_f for all pairs), at the cost of one
 * extra virtual channel per y-dimension wire.
 */

#ifndef TURNMODEL_CORE_ROUTING_MAD_Y_HPP
#define TURNMODEL_CORE_ROUTING_MAD_Y_HPP

#include <memory>

#include "core/routing/turn_table.hpp"
#include "topology/virtual_channels.hpp"

namespace turnmodel {

/**
 * The allowed-turn set of the mad-y algorithm over the three virtual
 * dimensions (x, y1, y2) of a double-y mesh.
 */
TurnSet madYTurnSet();

/** Fully adaptive mad-y routing on a double-y virtualized 2D mesh. */
class MadYRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param mesh    Double-y virtualized mesh (1 x pair, 2 y
     *                pairs); must outlive this object.
     * @param minimal Restrict to shortest physical paths.
     */
    explicit MadYRouting(const VirtualizedMesh &mesh,
                         bool minimal = true);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override;
    const Topology &topology() const override;
    bool isMinimal() const override;
    bool isInputDependent() const override { return true; }

  private:
    std::unique_ptr<TurnTableRouting> impl_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_MAD_Y_HPP
