#include "core/routing/pcube.hpp"

#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace turnmodel {

namespace {

/**
 * Direction of the hop across dimension i from a node whose bit i is
 * c_i: flipping 1 -> 0 travels negative, 0 -> 1 travels positive.
 */
Direction
hopDirection(std::uint64_t address, int dim)
{
    return Direction(static_cast<std::uint8_t>(dim),
                     !bitOf(address, dim));
}

} // namespace

ECubeRouting::ECubeRouting(const Hypercube &cube)
    : cube_(cube)
{
}

DirectionSet
ECubeRouting::routeSet(NodeId current, std::optional<Direction>,
                       NodeId dest) const
{
    const std::uint64_t diff = static_cast<std::uint64_t>(current)
        ^ static_cast<std::uint64_t>(dest);
    const int dim = lowestSetBit(diff);
    TM_ASSERT(dim >= 0, "routeSet() called with current == dest");
    return DirectionSet::single(hopDirection(current, dim));
}

PCubeRouting::PCubeRouting(const Hypercube &cube, bool minimal)
    : cube_(cube), minimal_(minimal)
{
}

std::string
PCubeRouting::name() const
{
    return minimal_ ? "p-cube" : "p-cube-nonminimal";
}

PCubeRouting::Choices
PCubeRouting::choices(NodeId current, NodeId dest) const
{
    const std::uint64_t c = current;
    const std::uint64_t d = dest;
    const int n = cube_.numDims();
    Choices out;
    // Phase one: R = C & ~D (dimensions still to clear).
    std::uint64_t r = c & complementBits(d, n);
    std::uint64_t extra = 0;
    if (r != 0) {
        // Nonminimal phase one may also flip any other set bit of C.
        extra = c & d;
    } else {
        // Phase two: R = ~C & D.
        r = complementBits(c, n) & d;
    }
    for (int i = 0; i < n; ++i) {
        if (bitOf(r, i))
            out.minimal_dims.push_back(i);
        if (bitOf(extra, i))
            out.nonminimal_dims.push_back(i);
    }
    return out;
}

DirectionSet
PCubeRouting::routeSet(NodeId current, std::optional<Direction>,
                       NodeId dest) const
{
    TM_ASSERT(current != dest, "routeSet() called with current == dest");
    const Choices ch = choices(current, dest);
    DirectionSet dirs;
    for (int dim : ch.minimal_dims)
        dirs.insert(hopDirection(current, dim));
    if (!minimal_) {
        for (int dim : ch.nonminimal_dims)
            dirs.insert(hopDirection(current, dim));
    }
    return dirs;
}

} // namespace turnmodel
