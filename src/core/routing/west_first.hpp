/**
 * @file
 * West-first partially adaptive routing for 2D meshes (Glass & Ni,
 * Section 3.1): route a packet first west, if necessary, and then
 * adaptively south, east, and north. Prohibits the two turns to the
 * west, which breaks both abstract cycles (Figure 5a), so the
 * algorithm is deadlock free (Theorem 2).
 */

#ifndef TURNMODEL_CORE_ROUTING_WEST_FIRST_HPP
#define TURNMODEL_CORE_ROUTING_WEST_FIRST_HPP

#include "core/routing.hpp"

namespace turnmodel {

/** Minimal west-first routing on a 2D mesh. */
class WestFirstRouting : public RoutingAlgorithm
{
  public:
    /** @param topo A 2D mesh; must outlive this object. */
    explicit WestFirstRouting(const Topology &topo);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override { return "west-first"; }
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return true; }

  private:
    const Topology &topo_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_WEST_FIRST_HPP
