/**
 * @file
 * Hypercube routing algorithms (Glass & Ni, Section 5):
 *
 *  - e-cube: nonadaptive, corrects the lowest differing dimension
 *    first (the hypercube instance of dimension-order routing);
 *  - p-cube: the hypercube special case of negative-first. With
 *    minimal routing, phase one clears dimensions where c_i = 1 and
 *    d_i = 0 (Figure 11); the nonminimal variant may additionally
 *    take any dimension with c_i = 1 in phase one (Figure 12).
 *
 * Both operate directly on binary node addresses via bitwise logic,
 * exactly as the paper's router would.
 */

#ifndef TURNMODEL_CORE_ROUTING_PCUBE_HPP
#define TURNMODEL_CORE_ROUTING_PCUBE_HPP

#include "core/routing.hpp"
#include "topology/hypercube.hpp"

namespace turnmodel {

/** Nonadaptive e-cube routing on a hypercube. */
class ECubeRouting : public RoutingAlgorithm
{
  public:
    /** @param cube Hypercube; must outlive this object. */
    explicit ECubeRouting(const Hypercube &cube);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override { return "e-cube"; }
    const Topology &topology() const override { return cube_; }
    bool isMinimal() const override { return true; }

  private:
    const Hypercube &cube_;
};

/** Partially adaptive p-cube routing on a hypercube. */
class PCubeRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param cube    Hypercube; must outlive this object.
     * @param minimal When false, phase one may also traverse
     *                dimensions with c_i = 1 and d_i = 1 (Figure 12),
     *                trading path length for adaptiveness.
     */
    explicit PCubeRouting(const Hypercube &cube, bool minimal = true);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override;
    const Topology &topology() const override { return cube_; }
    bool isMinimal() const override { return minimal_; }

    /**
     * The dimension choices available at @p current for @p dest,
     * split into the minimal candidates and the extra nonminimal
     * candidates — the quantities tabulated in the paper's Section 5
     * example.
     */
    struct Choices
    {
        std::vector<int> minimal_dims;
        std::vector<int> nonminimal_dims;
    };
    Choices choices(NodeId current, NodeId dest) const;

  private:
    const Hypercube &cube_;
    bool minimal_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_PCUBE_HPP
