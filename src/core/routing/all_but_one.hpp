/**
 * @file
 * The n-dimensional analogs of west-first and north-last (Glass & Ni,
 * Section 4.1):
 *
 *  - all-but-one-negative-first (ABONF): route first adaptively in
 *    the negative directions of all but one dimension (n-1), then
 *    adaptively in the other directions;
 *  - all-but-one-positive-last (ABOPL): route first adaptively in the
 *    negative directions and the positive direction of dimension 0,
 *    then adaptively in the remaining positive directions.
 *
 * For n = 2 these specialize to west-first and north-last.
 */

#ifndef TURNMODEL_CORE_ROUTING_ALL_BUT_ONE_HPP
#define TURNMODEL_CORE_ROUTING_ALL_BUT_ONE_HPP

#include "core/routing.hpp"

namespace turnmodel {

/** Minimal all-but-one-negative-first routing on an n-D mesh. */
class AllButOneNegativeFirstRouting : public RoutingAlgorithm
{
  public:
    /** @param topo An n-dimensional mesh (n >= 2). */
    explicit AllButOneNegativeFirstRouting(const Topology &topo);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override { return "abonf"; }
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return true; }

  private:
    const Topology &topo_;
};

/** Minimal all-but-one-positive-last routing on an n-D mesh. */
class AllButOnePositiveLastRouting : public RoutingAlgorithm
{
  public:
    /** @param topo An n-dimensional mesh (n >= 2). */
    explicit AllButOnePositiveLastRouting(const Topology &topo);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override { return "abopl"; }
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return true; }

  private:
    const Topology &topo_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_ALL_BUT_ONE_HPP
