/**
 * @file
 * The odd-even turn model (Chiu, IEEE TPDS 2000) — the best-known
 * descendant of Glass & Ni's turn model, included here as an
 * extension. Instead of prohibiting the same turns everywhere (which
 * concentrates the surviving adaptiveness in particular quadrants),
 * the odd-even model prohibits turns *by column parity*:
 *
 *  - Rule 1: no east->north turn at a node in an even column, and no
 *    north->west turn at a node in an odd column;
 *  - Rule 2: no east->south turn at a node in an even column, and no
 *    south->west turn at a node in an odd column.
 *
 * The rightmost turns a packet can make toward west are thereby
 * staggered so that no two packets can sustain a cycle, while the
 * degree of adaptiveness is spread far more evenly across
 * source/destination pairs than west-first's. Deadlock freedom is
 * machine-checked by the channel-dependency-graph tests rather than
 * assumed.
 */

#ifndef TURNMODEL_CORE_ROUTING_ODD_EVEN_HPP
#define TURNMODEL_CORE_ROUTING_ODD_EVEN_HPP

#include <memory>

#include "core/routing/turn_table.hpp"

namespace turnmodel {

/** The odd-even model's position-dependent turn rule for @p topo. */
TurnRule oddEvenTurnRule(const Topology &topo);

/** Odd-even turn model routing on a 2D mesh. */
class OddEvenRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param topo    2D mesh; must outlive this object.
     * @param minimal Restrict to shortest paths.
     */
    explicit OddEvenRouting(const Topology &topo, bool minimal = true);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override;
    const Topology &topology() const override;
    bool isMinimal() const override;
    bool isInputDependent() const override { return true; }

  private:
    std::unique_ptr<PositionalTurnRouting> impl_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_ODD_EVEN_HPP
