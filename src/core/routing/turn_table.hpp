/**
 * @file
 * Generic routing driven by allowed-turn rules. This is the
 * executable form of the turn model: given a rule saying which turns
 * are permitted at which nodes, the algorithm offers every hop whose
 * turn is allowed and from which the destination remains reachable.
 *
 * Two layers are provided:
 *
 *  - PositionalTurnRouting: turns may be allowed or prohibited per
 *    node, the generalization used by descendants of the turn model
 *    such as the odd-even model (odd_even.hpp);
 *  - TurnTableRouting: the paper's position-independent case, driven
 *    by a TurnSet. Used to realize the nonminimal variants of
 *    west-first / north-last / negative-first, to enumerate the
 *    sixteen two-turn prohibitions of a 2D mesh (twelve deadlock
 *    free, Figure 4), and to demonstrate deadlock for turn sets that
 *    do not break every cycle.
 *
 * Reachability is precomputed per destination over (node, arrival
 * direction) states, so the routing function never offers a hop that
 * strands the packet (e.g. a nonminimal west-first packet is never
 * sent east of the destination column, where a westward correction
 * would require a prohibited turn).
 */

#ifndef TURNMODEL_CORE_ROUTING_TURN_TABLE_HPP
#define TURNMODEL_CORE_ROUTING_TURN_TABLE_HPP

#include <functional>
#include <memory>
#include <unordered_map>

#include "core/routing.hpp"
#include "core/turn_set.hpp"

namespace turnmodel {

/**
 * Whether the turn @p t is permitted at node @p at. The turn occurs
 * at the node where the packet changes direction.
 */
using TurnRule = std::function<bool(NodeId at, Turn t)>;

/** Rule that consults a position-independent TurnSet. */
TurnRule makeTurnRule(TurnSet set);

/**
 * Destination-reachability oracle over (node, arrival direction)
 * states under a turn rule. Tables are computed lazily per
 * destination and cached; not thread safe.
 */
class ReachabilityOracle
{
  public:
    /**
     * @param topo    Topology; must outlive this object.
     * @param rule    Allowed-turn rule; copied.
     * @param minimal Restrict moves to profitable hops.
     */
    ReachabilityOracle(const Topology &topo, TurnRule rule, bool minimal);

    /** Convenience constructor from a position-independent set. */
    ReachabilityOracle(const Topology &topo, TurnSet turns, bool minimal);

    /**
     * Whether @p dest can be reached from @p node given the packet
     * arrived travelling along @p in_dir (nullopt for the injection
     * state, from which every direction is available).
     */
    bool reachable(NodeId node, std::optional<Direction> in_dir,
                   NodeId dest) const;

  private:
    /** States per node: one per arrival direction plus injection. */
    int statesPerNode() const;
    int stateIndex(NodeId node, std::optional<Direction> in_dir) const;
    const std::vector<bool> &tableFor(NodeId dest) const;

    const Topology &topo_;
    TurnRule rule_;
    bool minimal_;
    mutable std::unordered_map<NodeId, std::vector<bool>> cache_;
};

/** Routing by a (possibly position-dependent) allowed-turn rule. */
class PositionalTurnRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param topo     Topology; must outlive this object.
     * @param rule     Allowed-turn rule; copied.
     * @param minimal  Offer only profitable hops.
     * @param name_tag Display name.
     */
    PositionalTurnRouting(const Topology &topo, TurnRule rule,
                          bool minimal, std::string name_tag);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override { return name_; }
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return minimal_; }
    bool isInputDependent() const override { return true; }

    /**
     * Whether the rule leaves a route between every ordered node
     * pair, starting from the injection state — the connectivity
     * requirement of Step 4 of the turn model.
     */
    bool isConnected() const;

  private:
    const Topology &topo_;
    TurnRule rule_;
    bool minimal_;
    std::string name_;
    ReachabilityOracle oracle_;
};

/** Routing by an explicit position-independent allowed-turn table. */
class TurnTableRouting : public PositionalTurnRouting
{
  public:
    /**
     * @param topo     Topology; must outlive this object.
     * @param turns    Allowed turns; copied.
     * @param minimal  Offer only profitable hops.
     * @param name_tag Display name; defaults to a generated one.
     */
    TurnTableRouting(const Topology &topo, TurnSet turns, bool minimal,
                     std::string name_tag = "");

    const TurnSet &turnSet() const { return turns_; }

  private:
    TurnSet turns_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_TURN_TABLE_HPP
