/**
 * @file
 * Duato-style fully adaptive routing over an escape virtual channel,
 * plus the unrestricted fully adaptive straw man it improves on.
 *
 * The turn model buys deadlock freedom by prohibiting turns; Duato's
 * methodology buys it with channel classes instead. Split every
 * physical channel into virtual channels (topology/virtual_channels):
 * VC 0 is the *escape* channel, restricted to a deadlock-free inner
 * algorithm (any of the repertoire's turn-model algorithms); every
 * VC >= 1 is *adaptive* and may take any profitable hop. A blocked
 * header can always fall back to the escape channel, whose
 * channel-dependency graph is a copy of the inner algorithm's acyclic
 * graph — so the escape subnetwork always drains and the whole
 * network is deadlock free, while the adaptive channels supply the
 * full minimal adaptiveness the turn model has to give up.
 *
 * Wormhole caveat: once a packet's header is travelling on an escape
 * channel it stays on escape channels (the "stay on escape" rule).
 * Re-entering the adaptive channels after an escape hop would let a
 * packet hold an escape channel while waiting on an adaptive one,
 * re-introducing cyclic waits; staying keeps every escape->escape
 * dependency inside the inner algorithm's acyclic graph. Dropping to
 * escape is treated as a fresh injection into the inner network, so
 * subsequent escape hops follow the inner algorithm's own turn
 * restrictions from that point on.
 *
 * Exposed through the factory as the "vc:<inner>" prefix, composable
 * with "compiled:"; FullyAdaptiveRouting is "fully-adaptive", the
 * deadlock-prone control for the watchdog tests and the ablation.
 */

#ifndef TURNMODEL_CORE_ROUTING_ESCAPE_VC_HPP
#define TURNMODEL_CORE_ROUTING_ESCAPE_VC_HPP

#include <memory>
#include <string>

#include "core/routing.hpp"
#include "topology/mesh.hpp"
#include "topology/virtual_channels.hpp"

namespace turnmodel {

/**
 * Unrestricted minimal adaptive routing: every profitable hop, on
 * any channel, is always permitted. Routing-complete but *not*
 * deadlock free on meshes of 2+ dimensions — this is the algorithm
 * the turn model and the escape-VC scheme both exist to fix, kept as
 * the experimental control.
 */
class FullyAdaptiveRouting : public RoutingAlgorithm
{
  public:
    explicit FullyAdaptiveRouting(const Topology &topo) : topo_(topo) {}

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override
    {
        (void)in_dir;
        return minimalDirectionSet(topo_, current, dest);
    }

    std::string name() const override { return "fully-adaptive"; }
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return true; }

  private:
    const Topology &topo_;
};

/**
 * Escape-VC fully adaptive routing on a VirtualizedMesh whose every
 * physical dimension carries at least two virtual channel pairs.
 * Owns the companion physical mesh the inner algorithm routes over
 * (same pattern as the factory's wrap-first-hop adapter).
 */
class EscapeVcRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param mesh       Virtualized mesh, vcsOf(p) >= 2 for every
     *                   physical dimension; must outlive this object.
     * @param inner_name Factory name of the deadlock-free algorithm
     *                   restricted to the escape channels (VC 0).
     */
    EscapeVcRouting(const VirtualizedMesh &mesh,
                    const std::string &inner_name);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;

    std::string name() const override { return name_; }
    const Topology &topology() const override { return mesh_; }
    /** Adaptive hops are minimal; escape hops follow the inner
     * algorithm, so overall minimality is the inner algorithm's. */
    bool isMinimal() const override { return inner_->isMinimal(); }
    /** The stay-on-escape rule reads the arrival channel's class. */
    bool isInputDependent() const override { return true; }

    const RoutingAlgorithm &inner() const { return *inner_; }

  private:
    const VirtualizedMesh &mesh_;
    std::unique_ptr<NDMesh> phys_mesh_;
    RoutingPtr inner_;
    std::string name_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_ESCAPE_VC_HPP
