#include "core/routing/odd_even.hpp"

#include "util/logging.hpp"

namespace turnmodel {

TurnRule
oddEvenTurnRule(const Topology &topo)
{
    return [&topo](NodeId at, Turn t) {
        if (t.kind() == TurnKind::Zero)
            return true;    // Straight travel is always allowed.
        if (t.kind() == TurnKind::OneEighty)
            return false;   // Minimal-model default.
        const bool even_column = topo.coords(at)[0] % 2 == 0;
        const bool from_east = t.from == dir2d::East;
        const bool to_west = t.to == dir2d::West;
        // Rules 1 and 2: EN and ES prohibited in even columns; NW
        // and SW prohibited in odd columns.
        if (from_east && even_column)
            return false;
        if (to_west && !even_column)
            return false;
        return true;
    };
}

OddEvenRouting::OddEvenRouting(const Topology &topo, bool minimal)
{
    TM_ASSERT(topo.numDims() == 2,
              "the odd-even model is defined on 2D meshes");
    impl_ = std::make_unique<PositionalTurnRouting>(
        topo, oddEvenTurnRule(topo), minimal,
        minimal ? "odd-even" : "odd-even-nonminimal");
}

DirectionSet
OddEvenRouting::routeSet(NodeId current, std::optional<Direction> in_dir,
                         NodeId dest) const
{
    return impl_->routeSet(current, in_dir, dest);
}

std::string
OddEvenRouting::name() const
{
    return impl_->name();
}

const Topology &
OddEvenRouting::topology() const
{
    return impl_->topology();
}

bool
OddEvenRouting::isMinimal() const
{
    return impl_->isMinimal();
}

} // namespace turnmodel
