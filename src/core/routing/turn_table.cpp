#include "core/routing/turn_table.hpp"

#include <deque>

#include "util/logging.hpp"

namespace turnmodel {

TurnRule
makeTurnRule(TurnSet set)
{
    return [set = std::move(set)](NodeId, Turn t) {
        return set.isAllowed(t);
    };
}

ReachabilityOracle::ReachabilityOracle(const Topology &topo, TurnRule rule,
                                       bool minimal)
    : topo_(topo), rule_(std::move(rule)), minimal_(minimal)
{
}

ReachabilityOracle::ReachabilityOracle(const Topology &topo, TurnSet turns,
                                       bool minimal)
    : ReachabilityOracle(topo, makeTurnRule(std::move(turns)), minimal)
{
}

int
ReachabilityOracle::statesPerNode() const
{
    return topo_.numDirs() + 1;
}

int
ReachabilityOracle::stateIndex(NodeId node,
                               std::optional<Direction> in_dir) const
{
    const int within = in_dir ? 1 + static_cast<int>(in_dir->id()) : 0;
    return static_cast<int>(node) * statesPerNode() + within;
}

const std::vector<bool> &
ReachabilityOracle::tableFor(NodeId dest) const
{
    auto it = cache_.find(dest);
    if (it != cache_.end())
        return it->second;

    // Backward breadth-first search from the destination over the
    // state graph. A state (v, in) is good when v == dest or some
    // allowed move leads to a good state.
    const int spn = statesPerNode();
    std::vector<bool> good(static_cast<std::size_t>(topo_.numNodes()) *
                           static_cast<std::size_t>(spn), false);

    // Work queue of good states whose predecessors still need marking.
    std::deque<std::pair<NodeId, int>> queue;
    for (int s = 0; s < spn; ++s) {
        good[static_cast<std::size_t>(static_cast<int>(dest) * spn + s)] =
            true;
        queue.emplace_back(dest, s);
    }

    while (!queue.empty()) {
        const auto [w, state_in_w] = queue.front();
        queue.pop_front();
        // The state (w, s) was reached by a move along direction
        // `arrive` (s == 0 is the injection state: nothing arrives
        // there by a move, but it is terminal when w == dest and has
        // no in-network predecessors).
        if (state_in_w == 0)
            continue;
        const Direction arrive = Direction::fromId(
            static_cast<DirId>(state_in_w - 1));
        // Predecessor node: the move went v --arrive--> w.
        const auto pred = topo_.neighbor(w, arrive.opposite());
        if (!pred)
            continue;
        const NodeId v = *pred;
        if (topo_.neighbor(v, arrive) != w) {
            // Asymmetric links (e.g. one direction of a channel
            // failed): w is not reachable from v this way.
            continue;
        }
        if (minimal_ && topo_.distance(w, dest) >= topo_.distance(v, dest))
            continue;
        // Any predecessor state whose turn into `arrive` (taken at
        // node v) is allowed becomes good.
        for (int s = 0; s < spn; ++s) {
            const std::size_t idx =
                static_cast<std::size_t>(static_cast<int>(v) * spn + s);
            if (good[idx])
                continue;
            const bool turn_ok = s == 0
                || rule_(v, Turn(Direction::fromId(
                                     static_cast<DirId>(s - 1)),
                                 arrive));
            if (turn_ok) {
                good[idx] = true;
                queue.emplace_back(v, s);
            }
        }
    }

    return cache_.emplace(dest, std::move(good)).first->second;
}

bool
ReachabilityOracle::reachable(NodeId node, std::optional<Direction> in_dir,
                              NodeId dest) const
{
    const auto &table = tableFor(dest);
    return table[static_cast<std::size_t>(stateIndex(node, in_dir))];
}

PositionalTurnRouting::PositionalTurnRouting(const Topology &topo,
                                             TurnRule rule, bool minimal,
                                             std::string name_tag)
    : topo_(topo), rule_(rule), minimal_(minimal),
      name_(std::move(name_tag)), oracle_(topo, std::move(rule), minimal)
{
}

DirectionSet
PositionalTurnRouting::routeSet(NodeId current,
                                std::optional<Direction> in_dir,
                                NodeId dest) const
{
    TM_ASSERT(current != dest, "routeSet() called with current == dest");
    DirectionSet dirs;
    const int num_dirs = topo_.numDirs();
    for (DirId id = 0; id < num_dirs; ++id) {
        const Direction d = Direction::fromId(id);
        if (in_dir && !rule_(current, Turn(*in_dir, d)))
            continue;
        const auto next = topo_.neighbor(current, d);
        if (!next)
            continue;
        if (minimal_ &&
            topo_.distance(*next, dest) >= topo_.distance(current, dest)) {
            continue;
        }
        if (!oracle_.reachable(*next, d, dest))
            continue;
        dirs.insert(d);
    }
    return dirs;
}

bool
PositionalTurnRouting::isConnected() const
{
    for (NodeId src = 0; src < topo_.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo_.numNodes(); ++dst) {
            if (src == dst)
                continue;
            if (!oracle_.reachable(src, std::nullopt, dst))
                return false;
        }
    }
    return true;
}

namespace {

std::string
turnTableName(const TurnSet &turns, bool minimal,
              const std::string &name_tag)
{
    if (!name_tag.empty())
        return name_tag;
    return std::string("turn-table(") + turns.toString()
        + (minimal ? ", minimal)" : ", nonminimal)");
}

} // namespace

TurnTableRouting::TurnTableRouting(const Topology &topo, TurnSet turns,
                                   bool minimal, std::string name_tag)
    : PositionalTurnRouting(topo, makeTurnRule(turns), minimal,
                            turnTableName(turns, minimal, name_tag)),
      turns_(std::move(turns))
{
    TM_ASSERT(turns_.numDims() == topo.numDims(),
              "turn set dimensionality must match the topology");
}

} // namespace turnmodel
