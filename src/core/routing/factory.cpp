#include "core/routing/factory.hpp"

#include <memory>

#include "core/routing/all_but_one.hpp"
#include "core/routing/compiled.hpp"
#include "core/routing/dimension_order.hpp"
#include "core/routing/escape_vc.hpp"
#include "core/routing/mad_y.hpp"
#include "topology/hex.hpp"
#include "topology/oct.hpp"
#include "core/routing/negative_first.hpp"
#include "core/routing/north_last.hpp"
#include "core/routing/odd_even.hpp"
#include "core/routing/pcube.hpp"
#include "core/routing/torus_adapters.hpp"
#include "core/routing/turn_table.hpp"
#include "core/routing/west_first.hpp"
#include "core/turn_set.hpp"
#include "util/logging.hpp"

namespace turnmodel {

namespace {

/**
 * Owns the companion mesh an inner algorithm routes over, together
 * with the wraparound-first-hop wrapper itself.
 */
class OwningWrapFirstHop : public RoutingAlgorithm
{
  public:
    OwningWrapFirstHop(const KAryNCube &torus,
                       const std::string &inner_name)
        : mesh_(std::make_unique<NDMesh>(torus.shape()))
    {
        impl_ = std::make_unique<WraparoundFirstHopRouting>(
            torus, makeRouting(inner_name, *mesh_));
    }

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override
    {
        return impl_->routeSet(current, in_dir, dest);
    }

    std::string name() const override { return impl_->name(); }
    const Topology &topology() const override
    {
        return impl_->topology();
    }
    bool isMinimal() const override { return impl_->isMinimal(); }
    bool isInputDependent() const override { return true; }

  private:
    std::unique_ptr<NDMesh> mesh_;
    std::unique_ptr<WraparoundFirstHopRouting> impl_;
};

bool
isBinaryShape(const Topology &topo)
{
    for (int d = 0; d < topo.numDims(); ++d) {
        if (topo.radix(d) != 2)
            return false;
    }
    return true;
}

} // namespace

RoutingPtr
makeRouting(const std::string &name, const Topology &topo)
{
    // "compiled:<inner>" snapshots the inner algorithm into a dense
    // lookup table (see core/routing/compiled.hpp). The inner
    // algorithm is only needed while the table is built.
    if (name.rfind("compiled:", 0) == 0) {
        const std::string inner =
            name.substr(std::string("compiled:").size());
        const RoutingPtr source = makeRouting(inner, topo);
        return std::make_unique<CompiledRoutingTable>(*source);
    }

    // "vc:<inner>" layers escape-VC fully adaptive routing over any
    // deadlock-free inner algorithm: VC 0 of a VirtualizedMesh obeys
    // the inner algorithm, every other VC is fully adaptive (see
    // core/routing/escape_vc.hpp). Hyphenless aliases are accepted
    // for the common inner algorithms.
    if (name.rfind("vc:", 0) == 0) {
        const auto *vmesh =
            dynamic_cast<const VirtualizedMesh *>(&topo);
        if (!vmesh) {
            TM_FATAL("the vc: prefix requires a VirtualizedMesh "
                     "topology; got ", topo.name());
        }
        std::string inner = name.substr(std::string("vc:").size());
        if (inner == "westfirst")
            inner = "west-first";
        else if (inner == "northlast")
            inner = "north-last";
        else if (inner == "negativefirst")
            inner = "negative-first";
        else if (inner == "dimensionorder" || inner == "ecube")
            inner = "dimension-order";
        return std::make_unique<EscapeVcRouting>(*vmesh, inner);
    }
    if (name == "fully-adaptive")
        return std::make_unique<FullyAdaptiveRouting>(topo);

    const auto *cube = dynamic_cast<const Hypercube *>(&topo);
    const auto *torus = dynamic_cast<const KAryNCube *>(&topo);

    // Synthesized algorithms: a prohibited-turn spec embedded in the
    // name (the synthesis engine emits these; see
    // synthesis/engine.hpp). Works on any topology whose dimensions
    // match the spec.
    for (const auto &[prefix, minimal] :
         {std::pair<const char *, bool>{"synth:", true},
          std::pair<const char *, bool>{"synth-nonminimal:", false}}) {
        if (name.rfind(prefix, 0) != 0)
            continue;
        const std::string spec =
            name.substr(std::string(prefix).size());
        const auto set =
            TurnSet::fromProhibitedSpec(spec, topo.numDims());
        if (!set) {
            TM_FATAL("bad synthesized-routing spec '", spec,
                     "' for ", topo.name());
        }
        return std::make_unique<TurnTableRouting>(topo, *set, minimal,
                                                  name);
    }

    // Hexagonal meshes route through the generic turn-rule machinery
    // (their axes are not independent coordinates, so the
    // coordinate-phase algorithm classes do not apply).
    if (dynamic_cast<const HexMesh *>(&topo)) {
        if (name == "negative-first" ||
            name == "negative-first-nonminimal") {
            return std::make_unique<TurnTableRouting>(
                topo, TurnSet::negativeFirst(3),
                name == "negative-first", name);
        }
        if (name == "axis-order" || name == "dimension-order") {
            return std::make_unique<TurnTableRouting>(
                topo, TurnSet::dimensionOrder(3), true, "axis-order");
        }
        TM_FATAL("hex meshes support axis-order and negative-first; "
                 "got '", name, "'");
    }
    if (dynamic_cast<const OctMesh *>(&topo)) {
        if (name == "negative-first" ||
            name == "negative-first-nonminimal") {
            return std::make_unique<TurnTableRouting>(
                topo, TurnSet::negativeFirst(4),
                name == "negative-first", name);
        }
        if (name == "axis-order" || name == "dimension-order") {
            return std::make_unique<TurnTableRouting>(
                topo, TurnSet::dimensionOrder(4), true, "axis-order");
        }
        TM_FATAL("octagonal meshes support axis-order and "
                 "negative-first; got '", name, "'");
    }

    if (name == "xy" || name == "dimension-order" || name == "e-cube") {
        if (cube)
            return std::make_unique<ECubeRouting>(*cube);
        return std::make_unique<DimensionOrderRouting>(topo);
    }
    if (name == "west-first")
        return std::make_unique<WestFirstRouting>(topo);
    if (name == "north-last")
        return std::make_unique<NorthLastRouting>(topo);
    if (name == "negative-first")
        return std::make_unique<NegativeFirstRouting>(topo);
    if (name == "abonf")
        return std::make_unique<AllButOneNegativeFirstRouting>(topo);
    if (name == "abopl")
        return std::make_unique<AllButOnePositiveLastRouting>(topo);
    if (name == "p-cube" || name == "p-cube-nonminimal") {
        if (!cube)
            TM_FATAL("p-cube routing requires a hypercube topology");
        return std::make_unique<PCubeRouting>(*cube, name == "p-cube");
    }
    if (name == "west-first-nonminimal") {
        return std::make_unique<TurnTableRouting>(
            topo, TurnSet::westFirst(), false, "west-first-nonminimal");
    }
    if (name == "north-last-nonminimal") {
        return std::make_unique<TurnTableRouting>(
            topo, TurnSet::northLast(), false, "north-last-nonminimal");
    }
    if (name == "negative-first-nonminimal") {
        return std::make_unique<TurnTableRouting>(
            topo, TurnSet::negativeFirst(topo.numDims()), false,
            "negative-first-nonminimal");
    }
    if (name == "odd-even" || name == "odd-even-nonminimal") {
        return std::make_unique<OddEvenRouting>(topo, name == "odd-even");
    }
    if (name == "mad-y" || name == "mad-y-nonminimal") {
        const auto *vmesh = dynamic_cast<const VirtualizedMesh *>(&topo);
        if (!vmesh)
            TM_FATAL("mad-y requires a double-y virtualized mesh");
        return std::make_unique<MadYRouting>(*vmesh, name == "mad-y");
    }
    if (name == "torus-negative-first") {
        if (!torus)
            TM_FATAL("torus-negative-first requires a k-ary n-cube");
        return std::make_unique<TorusNegativeFirstRouting>(*torus);
    }
    if (name.rfind("wrap-first-hop:", 0) == 0) {
        if (!torus)
            TM_FATAL("wrap-first-hop requires a k-ary n-cube");
        const std::string inner = name.substr(std::string(
            "wrap-first-hop:").size());
        return std::make_unique<OwningWrapFirstHop>(*torus, inner);
    }
    TM_FATAL("unknown routing algorithm '", name, "'");
}

std::vector<std::string>
availableRoutingNames(const Topology &topo)
{
    std::vector<std::string> names;
    if (dynamic_cast<const HexMesh *>(&topo) ||
        dynamic_cast<const OctMesh *>(&topo)) {
        return {"axis-order", "negative-first",
                "negative-first-nonminimal"};
    }
    const bool binary = isBinaryShape(topo);
    names.push_back(topo.numDims() == 2 && !binary ? "xy"
                    : binary ? "e-cube" : "dimension-order");
    if (topo.numDims() == 2) {
        names.push_back("west-first");
        names.push_back("north-last");
        names.push_back("west-first-nonminimal");
        names.push_back("north-last-nonminimal");
        names.push_back("odd-even");
        names.push_back("odd-even-nonminimal");
    }
    names.push_back("negative-first");
    names.push_back("negative-first-nonminimal");
    if (topo.numDims() >= 2) {
        names.push_back("abonf");
        names.push_back("abopl");
    }
    if (dynamic_cast<const Hypercube *>(&topo)) {
        names.push_back("p-cube");
        names.push_back("p-cube-nonminimal");
    }
    names.push_back("fully-adaptive");
    if (const auto *vmesh =
            dynamic_cast<const VirtualizedMesh *>(&topo)) {
        names.push_back("mad-y");
        names.push_back("mad-y-nonminimal");
        bool escape_capable = true;
        for (int p = 0; p < vmesh->numPhysicalDims(); ++p)
            escape_capable = escape_capable && vmesh->vcsOf(p) >= 2;
        if (escape_capable) {
            names.push_back("vc:dimension-order");
            names.push_back("vc:negative-first");
            if (vmesh->numPhysicalDims() == 2) {
                names.push_back("vc:west-first");
                names.push_back("vc:north-last");
            }
        }
    }
    if (const auto *torus = dynamic_cast<const KAryNCube *>(&topo);
        torus && torus->k() > 2) {
        names.push_back("torus-negative-first");
        names.push_back("wrap-first-hop:negative-first");
        names.push_back("wrap-first-hop:dimension-order");
    }
    return names;
}

} // namespace turnmodel
