#include "core/routing/escape_vc.hpp"

#include "core/routing/factory.hpp"
#include "util/logging.hpp"

namespace turnmodel {

EscapeVcRouting::EscapeVcRouting(const VirtualizedMesh &mesh,
                                 const std::string &inner_name)
    : mesh_(mesh), phys_mesh_(std::make_unique<NDMesh>(mesh.shape()))
{
    for (int p = 0; p < mesh_.numPhysicalDims(); ++p) {
        if (mesh_.vcsOf(p) < 2) {
            TM_FATAL("escape-VC routing needs >= 2 virtual channels "
                     "in every physical dimension; dimension ", p,
                     " of ", mesh_.name(), " has ", mesh_.vcsOf(p));
        }
    }
    inner_ = makeRouting(inner_name, *phys_mesh_);
    name_ = "vc:" + inner_name;
}

DirectionSet
EscapeVcRouting::routeSet(NodeId current, std::optional<Direction> in_dir,
                          NodeId dest) const
{
    const bool on_escape =
        in_dir && mesh_.vcIndex(in_dir->dim) == 0;

    // Escape candidates: the inner algorithm decides on the physical
    // mesh and its directions map onto VC 0. A packet already on an
    // escape channel keeps the inner algorithm's view of its arrival
    // direction (stay-on-escape); one dropping in from an adaptive
    // channel or from injection enters the inner network fresh.
    const std::optional<Direction> inner_in =
        on_escape
            ? std::make_optional(mesh_.physicalDirection(*in_dir))
            : std::nullopt;
    DirectionSet escape;
    for (Direction pd : inner_->routeSet(current, inner_in, dest)) {
        escape.insert(Direction(
            static_cast<std::uint8_t>(mesh_.virtualDim(pd.dim, 0)),
            pd.positive));
    }
    if (on_escape)
        return escape;

    // Adaptive candidates: every profitable hop on every VC >= 1.
    DirectionSet adaptive;
    for (Direction vd : minimalDirectionSet(mesh_, current, dest)) {
        if (mesh_.vcIndex(vd.dim) >= 1)
            adaptive.insert(vd);
    }
    return adaptive | escape;
}

} // namespace turnmodel
