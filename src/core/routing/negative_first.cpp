#include "core/routing/negative_first.hpp"

#include "util/logging.hpp"

namespace turnmodel {

NegativeFirstRouting::NegativeFirstRouting(const Topology &topo)
    : topo_(topo)
{
}

DirectionSet
NegativeFirstRouting::routeSet(NodeId current, std::optional<Direction>,
                               NodeId dest) const
{
    const Coords cur = topo_.coords(current);
    const Coords dst = topo_.coords(dest);
    // Phase one: all negative hops, adaptively interleaved.
    DirectionSet dirs;
    for (std::size_t d = 0; d < cur.size(); ++d) {
        if (dst[d] < cur[d])
            dirs.insert(Direction(static_cast<std::uint8_t>(d), false));
    }
    if (!dirs.empty())
        return dirs;
    // Phase two: all positive hops, adaptively interleaved.
    for (std::size_t d = 0; d < cur.size(); ++d) {
        if (dst[d] > cur[d])
            dirs.insert(Direction(static_cast<std::uint8_t>(d), true));
    }
    TM_ASSERT(!dirs.empty(), "routeSet() called with current == dest");
    return dirs;
}

} // namespace turnmodel
