#include "core/routing/north_last.hpp"

#include "util/logging.hpp"

namespace turnmodel {

NorthLastRouting::NorthLastRouting(const Topology &topo)
    : topo_(topo)
{
    TM_ASSERT(topo.numDims() == 2, "north-last routing is defined on 2D");
}

DirectionSet
NorthLastRouting::routeSet(NodeId current, std::optional<Direction>,
                           NodeId dest) const
{
    const Coords cur = topo_.coords(current);
    const Coords dst = topo_.coords(dest);
    // Adaptive phase: west, south, and east while any of them is
    // profitable. North is deferred because a northbound packet may
    // not turn again.
    DirectionSet dirs;
    if (dst[0] < cur[0])
        dirs.insert(dir2d::West);
    if (dst[1] < cur[1])
        dirs.insert(dir2d::South);
    if (dst[0] > cur[0])
        dirs.insert(dir2d::East);
    if (!dirs.empty())
        return dirs;
    // Final phase: a straight northward run.
    TM_ASSERT(dst[1] > cur[1], "routeSet() called with current == dest");
    return DirectionSet::single(dir2d::North);
}

} // namespace turnmodel
