#include "core/routing/torus_adapters.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace turnmodel {

WraparoundFirstHopRouting::WraparoundFirstHopRouting(const KAryNCube &torus,
                                                     RoutingPtr inner)
    : torus_(torus), inner_(std::move(inner))
{
    TM_ASSERT(inner_ != nullptr, "inner routing required");
    TM_ASSERT(inner_->topology().shape() == torus.shape(),
              "inner mesh must have the torus's shape");
}

int
WraparoundFirstHopRouting::meshDistance(NodeId a, NodeId b) const
{
    const Coords ca = torus_.coords(a);
    const Coords cb = torus_.coords(b);
    int dist = 0;
    for (std::size_t d = 0; d < ca.size(); ++d)
        dist += std::abs(ca[d] - cb[d]);
    return dist;
}

DirectionSet
WraparoundFirstHopRouting::routeSet(NodeId current,
                                    std::optional<Direction> in_dir,
                                    NodeId dest) const
{
    // After the first hop only mesh channels may be used; the inner
    // algorithm provides the candidates.
    DirectionSet dirs = inner_->routeSet(current, in_dir, dest);
    if (in_dir)
        return dirs;
    // First hop: also offer wraparound channels that shorten the
    // remaining mesh route.
    const int here = meshDistance(current, dest);
    const int num_dirs = torus_.numDirs();
    for (DirId id = 0; id < num_dirs; ++id) {
        const Direction d = Direction::fromId(id);
        if (!torus_.isWraparound(current, d))
            continue;
        const auto next = torus_.neighbor(current, d);
        if (next && meshDistance(*next, dest) < here)
            dirs.insert(d);
    }
    return dirs;
}

std::string
WraparoundFirstHopRouting::name() const
{
    return inner_->name() + "+wrap-first-hop";
}

TorusNegativeFirstRouting::TorusNegativeFirstRouting(const KAryNCube &torus)
    : torus_(torus)
{
    TM_ASSERT(torus.k() > 2, "classified torus routing needs k > 2");
}

DirectionSet
TorusNegativeFirstRouting::routeSet(NodeId current,
                                    std::optional<Direction>,
                                    NodeId dest) const
{
    const Coords cur = torus_.coords(current);
    const Coords dst = torus_.coords(dest);
    const int n = torus_.numDims();

    // Phase one while any coordinate must decrease. The +dim
    // wraparound channel out of coordinate k-1 routes packets to
    // coordinate 0 and is classified as a negative channel; it is
    // offered when going around is shorter.
    DirectionSet dirs;
    bool need_negative = false;
    for (int d = 0; d < n; ++d) {
        if (dst[d] < cur[d]) {
            need_negative = true;
            dirs.insert(Direction(static_cast<std::uint8_t>(d), false));
            const int k = torus_.radix(d);
            const bool at_top = cur[d] == k - 1;
            // Around the top: one wraparound hop plus dst[d] positive
            // hops later, versus cur[d]-dst[d] mesh hops.
            if (at_top && 1 + dst[d] < cur[d] - dst[d])
                dirs.insert(Direction(static_cast<std::uint8_t>(d), true));
        }
    }
    if (need_negative)
        return dirs;

    // Phase two: only classified-positive channels remain legal. The
    // -dim wraparound out of coordinate 0 reaches k-1 and may be used
    // only when the destination sits exactly at k-1 (anything past
    // the destination would need a prohibited negative correction).
    for (int d = 0; d < n; ++d) {
        if (dst[d] > cur[d]) {
            dirs.insert(Direction(static_cast<std::uint8_t>(d), true));
            const int k = torus_.radix(d);
            if (cur[d] == 0 && dst[d] == k - 1 && k > 2)
                dirs.insert(Direction(static_cast<std::uint8_t>(d), false));
        }
    }
    TM_ASSERT(!dirs.empty(), "routeSet() called with current == dest");
    return dirs;
}

} // namespace turnmodel
