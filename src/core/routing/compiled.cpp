#include "core/routing/compiled.hpp"

#include "topology/topology.hpp"
#include "util/logging.hpp"

namespace turnmodel {

CompiledRoutingTable::CompiledRoutingTable(const RoutingAlgorithm &source)
    : topo_(source.topology()),
      name_("compiled:" + source.name()),
      minimal_(source.isMinimal()),
      input_dependent_(source.isInputDependent()),
      num_nodes_(static_cast<std::size_t>(topo_.numNodes())),
      states_per_node_(input_dependent_ ? topo_.numDirs() + 1 : 1),
      state_mask_(input_dependent_ ? ~std::size_t{0} : 0)
{
    TM_ASSERT(topo_.numDirs() <= DirectionSet::kMaxDirs,
              "topology has more directions than a DirectionSet holds");
    table_.assign(num_nodes_
                      * static_cast<std::size_t>(states_per_node_)
                      * num_nodes_,
                  DirectionSet());

    const int num_dirs = topo_.numDirs();
    for (NodeId node = 0; node < topo_.numNodes(); ++node) {
        for (NodeId dest = 0; dest < topo_.numNodes(); ++dest) {
            if (node == dest)
                continue;   // Routing is never consulted at the dest.
            table_[index(node, 0, dest)] =
                source.routeSet(node, std::nullopt, dest);
            if (states_per_node_ == 1)
                continue;
            for (DirId id = 0; id < num_dirs; ++id) {
                // Every arrival state is snapshotted — even ones no
                // physical channel can produce — so the table answers
                // bit-for-bit like the source on any triple.
                const Direction d = Direction::fromId(id);
                table_[index(node, 1 + static_cast<std::size_t>(id),
                             dest)] = source.routeSet(node, d, dest);
            }
        }
    }
}

bool
CompiledRoutingTable::allPairsRoutable() const
{
    for (NodeId src = 0; src < topo_.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo_.numNodes(); ++dst) {
            if (src == dst)
                continue;
            if (table_[index(src, 0, dst)].empty())
                return false;
        }
    }
    return true;
}

} // namespace turnmodel
