/**
 * @file
 * Compiled routing tables: snapshot any RoutingAlgorithm into a dense
 * flat array of DirectionSet entries indexed by (node, arrival state,
 * destination), so every later decision is a single branch-free load.
 *
 * Motivation: a routing function is consulted millions of times by
 * the simulator hot loop, the channel-dependency builder, the
 * adaptiveness counters, and the synthesis verifier, but over a tiny
 * finite domain — numNodes x (numDirs + 1) x numNodes states. Related
 * table-driven NoC work (output-queue deadlock-avoidance tables,
 * LUT-based fault-tolerant routing) shows the representation is
 * naturally a table; compiling once removes the virtual dispatch,
 * the per-call branching, and — for turn-table algorithms — the lazy
 * reachability cache, whose mutation makes the uncompiled form
 * thread-unsafe. A compiled table is immutable after construction and
 * therefore trivially shareable across the exec/ thread pool.
 *
 * Memory cost is numNodes^2 x (numDirs + 1) x 4 bytes dense, or
 * numNodes^2 x 4 collapsed when the source ignores the arrival
 * direction (see DESIGN.md for the per-topology numbers).
 */

#ifndef TURNMODEL_CORE_ROUTING_COMPILED_HPP
#define TURNMODEL_CORE_ROUTING_COMPILED_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "core/routing.hpp"

namespace turnmodel {

/**
 * A routing algorithm precompiled into a dense lookup table.
 *
 * The snapshot is bit-for-bit faithful: for every (current, in_dir,
 * dest) triple with current != dest, routeSet() returns exactly what
 * the source algorithm returned at compile time (differential tests
 * assert this across the whole factory). Entries with current == dest
 * are empty — the contract says routing is never consulted there.
 */
class CompiledRoutingTable final : public RoutingAlgorithm
{
  public:
    /**
     * Snapshot @p source. The source is only needed during
     * construction; its topology must outlive this table.
     */
    explicit CompiledRoutingTable(const RoutingAlgorithm &source);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override
    {
        return table_[index(current, stateOf(in_dir), dest)];
    }

    /**
     * Branch-free raw lookup: @p in_state is 0 for injection or
     * 1 + direction id for an arrival direction (the same packing the
     * reachability oracle and the simulator use). Input-independent
     * tables mask the state to their single shared row.
     */
    DirectionSet lookup(NodeId current, int in_state, NodeId dest) const
    {
        return table_[index(current,
                            static_cast<std::size_t>(in_state)
                                & state_mask_,
                            dest)];
    }

    /** "compiled:" + the source algorithm's name. */
    std::string name() const override { return name_; }
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return minimal_; }
    bool isInputDependent() const override { return input_dependent_; }

    /** Arrival states per node stored: numDirs + 1, or 1 when the
     * source is input independent (all states share one row). */
    int statesPerNode() const { return states_per_node_; }

    /** Table entries held (numNodes x statesPerNode x numNodes). */
    std::size_t entries() const { return table_.size(); }

    /** Bytes of table payload. */
    std::size_t sizeBytes() const
    {
        return table_.size() * sizeof(DirectionSet);
    }

    /**
     * Whether every ordered (src, dest) pair has at least one
     * candidate from the injection state. For sources whose decisions
     * carry a reachability guard (PositionalTurnRouting and friends),
     * a non-empty injection entry implies the destination is actually
     * reachable, so this is exactly the turn model's Step-4 full-
     * connectivity requirement; for unguarded sources it is only the
     * necessary first step of it.
     */
    bool allPairsRoutable() const;

  private:
    std::size_t stateOf(std::optional<Direction> in_dir) const
    {
        // Input-independent tables hold one shared row at state 0.
        if (states_per_node_ == 1)
            return 0;
        return in_dir ? 1 + static_cast<std::size_t>(in_dir->id()) : 0;
    }

    std::size_t index(NodeId current, std::size_t in_state,
                      NodeId dest) const
    {
        return (static_cast<std::size_t>(current)
                    * static_cast<std::size_t>(states_per_node_)
                + in_state)
            * num_nodes_ + dest;
    }

    const Topology &topo_;
    std::string name_;
    bool minimal_;
    bool input_dependent_;
    std::size_t num_nodes_;
    int states_per_node_;
    /** ~0 normally; 0 when all states collapse to one row. */
    std::size_t state_mask_;
    std::vector<DirectionSet> table_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_COMPILED_HPP
