#include "core/routing/all_but_one.hpp"

#include "util/logging.hpp"

namespace turnmodel {

AllButOneNegativeFirstRouting::AllButOneNegativeFirstRouting(
        const Topology &topo)
    : topo_(topo)
{
    TM_ASSERT(topo.numDims() >= 2, "abonf needs at least two dimensions");
}

DirectionSet
AllButOneNegativeFirstRouting::routeSet(NodeId current,
                                        std::optional<Direction>,
                                        NodeId dest) const
{
    const Coords cur = topo_.coords(current);
    const Coords dst = topo_.coords(dest);
    const std::size_t last = cur.size() - 1;
    // Phase one: negative hops in dimensions 0..n-2, adaptively.
    DirectionSet dirs;
    for (std::size_t d = 0; d < last; ++d) {
        if (dst[d] < cur[d])
            dirs.insert(Direction(static_cast<std::uint8_t>(d), false));
    }
    if (!dirs.empty())
        return dirs;
    // Phase two: every other profitable direction (all positives plus
    // the negative direction of dimension n-1), adaptively.
    for (std::size_t d = 0; d < cur.size(); ++d) {
        if (dst[d] > cur[d])
            dirs.insert(Direction(static_cast<std::uint8_t>(d), true));
    }
    if (dst[last] < cur[last])
        dirs.insert(Direction(static_cast<std::uint8_t>(last), false));
    TM_ASSERT(!dirs.empty(), "routeSet() called with current == dest");
    return dirs;
}

AllButOnePositiveLastRouting::AllButOnePositiveLastRouting(
        const Topology &topo)
    : topo_(topo)
{
    TM_ASSERT(topo.numDims() >= 2, "abopl needs at least two dimensions");
}

DirectionSet
AllButOnePositiveLastRouting::routeSet(NodeId current,
                                       std::optional<Direction>,
                                       NodeId dest) const
{
    const Coords cur = topo_.coords(current);
    const Coords dst = topo_.coords(dest);
    // Phase one: all negative directions plus the positive direction
    // of dimension 0, adaptively.
    DirectionSet dirs;
    for (std::size_t d = 0; d < cur.size(); ++d) {
        if (dst[d] < cur[d])
            dirs.insert(Direction(static_cast<std::uint8_t>(d), false));
    }
    if (dst[0] > cur[0])
        dirs.insert(Direction(static_cast<std::uint8_t>(0), true));
    if (!dirs.empty())
        return dirs;
    // Phase two: the remaining positive directions, adaptively.
    for (std::size_t d = 1; d < cur.size(); ++d) {
        if (dst[d] > cur[d])
            dirs.insert(Direction(static_cast<std::uint8_t>(d), true));
    }
    TM_ASSERT(!dirs.empty(), "routeSet() called with current == dest");
    return dirs;
}

} // namespace turnmodel
