/**
 * @file
 * Nonadaptive dimension-order routing: correct each dimension in
 * ascending index order. This is the paper's xy algorithm on 2D
 * meshes and the e-cube algorithm on hypercubes. Deadlock free
 * because it only turns from lower to higher dimensions, which
 * breaks every abstract cycle; nonadaptive because exactly one
 * output is offered at every hop.
 */

#ifndef TURNMODEL_CORE_ROUTING_DIMENSION_ORDER_HPP
#define TURNMODEL_CORE_ROUTING_DIMENSION_ORDER_HPP

#include "core/routing.hpp"

namespace turnmodel {

/** Dimension-order (xy / e-cube) routing on meshes and hypercubes. */
class DimensionOrderRouting : public RoutingAlgorithm
{
  public:
    /** @param topo Mesh-like topology; must outlive this object. */
    explicit DimensionOrderRouting(const Topology &topo);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override;
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return true; }

  private:
    const Topology &topo_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_DIMENSION_ORDER_HPP
