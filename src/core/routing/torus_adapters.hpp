/**
 * @file
 * Extensions of the mesh routing algorithms to k-ary n-cubes (Glass &
 * Ni, Section 4.2). Wraparound channels are incorporated in Step 5 of
 * the turn model in one of two ways:
 *
 *  - WraparoundFirstHopRouting: a packet may take a wraparound
 *    channel only on its first hop, then follows an inner mesh
 *    algorithm on the mesh channels;
 *  - TorusNegativeFirstRouting: each wraparound channel is classified
 *    by the direction in which it routes packets (the +dim wraparound
 *    from coordinate k-1 to 0 lowers the coordinate and is therefore
 *    a *negative* channel), and negative-first routing is applied to
 *    the classified directions.
 *
 * Both are strictly nonminimal in the torus metric, as the paper
 * notes all deadlock-free torus algorithms without extra channels
 * must be for k > 4.
 */

#ifndef TURNMODEL_CORE_ROUTING_TORUS_ADAPTERS_HPP
#define TURNMODEL_CORE_ROUTING_TORUS_ADAPTERS_HPP

#include <memory>

#include "core/routing.hpp"
#include "topology/mesh.hpp"
#include "topology/torus.hpp"

namespace turnmodel {

/**
 * Torus routing that permits wraparound hops only as a packet's first
 * hop, after which an inner mesh algorithm takes over.
 */
class WraparoundFirstHopRouting : public RoutingAlgorithm
{
  public:
    /**
     * @param torus Torus topology; must outlive this object.
     * @param inner Mesh routing over an equal-shape mesh (node ids
     *              coincide); owned.
     */
    WraparoundFirstHopRouting(const KAryNCube &torus, RoutingPtr inner);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override;
    const Topology &topology() const override { return torus_; }
    bool isMinimal() const override { return false; }
    bool isInputDependent() const override { return true; }

  private:
    /** Mesh distance ignoring wraparound channels. */
    int meshDistance(NodeId a, NodeId b) const;

    const KAryNCube &torus_;
    RoutingPtr inner_;
};

/**
 * Negative-first routing over a torus with wraparound channels
 * classified by the direction in which they route packets.
 */
class TorusNegativeFirstRouting : public RoutingAlgorithm
{
  public:
    /** @param torus Torus topology; must outlive this object. */
    explicit TorusNegativeFirstRouting(const KAryNCube &torus);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override { return "torus-negative-first"; }
    const Topology &topology() const override { return torus_; }
    bool isMinimal() const override { return false; }

  private:
    const KAryNCube &torus_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_TORUS_ADAPTERS_HPP
