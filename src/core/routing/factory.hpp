/**
 * @file
 * Name-based construction of routing algorithms, so that examples,
 * tests and benchmark harnesses can select algorithms from the
 * command line with the names used in the paper.
 */

#ifndef TURNMODEL_CORE_ROUTING_FACTORY_HPP
#define TURNMODEL_CORE_ROUTING_FACTORY_HPP

#include <string>
#include <vector>

#include "core/routing.hpp"

namespace turnmodel {

/**
 * Construct a routing algorithm by name.
 *
 * Mesh / hypercube names: "xy" (alias "dimension-order", "e-cube"),
 * "west-first", "north-last", "negative-first", "abonf", "abopl",
 * "p-cube" (hypercubes only), and nonminimal variants
 * "west-first-nonminimal", "north-last-nonminimal",
 * "negative-first-nonminimal", "p-cube-nonminimal".
 *
 * Torus names: "wrap-first-hop:<inner>" (e.g.
 * "wrap-first-hop:negative-first") and "torus-negative-first".
 *
 * Synthesized names (any topology): "synth:<spec>" and
 * "synth-nonminimal:<spec>", where <spec> is a comma-separated list
 * of prohibited 90-degree turns in TurnSet::prohibitedSpec form,
 * e.g. "synth:north->west,south->west" (the synthesized equivalent
 * of west-first). The synthesis engine (synthesis/engine.hpp) emits
 * verified names of this form.
 *
 * @param name Algorithm name.
 * @param topo Topology; must outlive the returned object.
 * @return The algorithm; fatal error for unknown names or
 *         algorithm/topology mismatches.
 */
RoutingPtr makeRouting(const std::string &name, const Topology &topo);

/** Names accepted by makeRouting for the given topology. */
std::vector<std::string> availableRoutingNames(const Topology &topo);

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_FACTORY_HPP
