/**
 * @file
 * North-last partially adaptive routing for 2D meshes (Glass & Ni,
 * Section 3.2): route a packet first adaptively west, south, and
 * east, and then north. Prohibits the two turns made while
 * travelling north (Figure 9a), so once a packet heads north it can
 * no longer turn; deadlock free by Theorem 3.
 */

#ifndef TURNMODEL_CORE_ROUTING_NORTH_LAST_HPP
#define TURNMODEL_CORE_ROUTING_NORTH_LAST_HPP

#include "core/routing.hpp"

namespace turnmodel {

/** Minimal north-last routing on a 2D mesh. */
class NorthLastRouting : public RoutingAlgorithm
{
  public:
    /** @param topo A 2D mesh; must outlive this object. */
    explicit NorthLastRouting(const Topology &topo);

    DirectionSet
    routeSet(NodeId current, std::optional<Direction> in_dir,
             NodeId dest) const override;
    std::string name() const override { return "north-last"; }
    const Topology &topology() const override { return topo_; }
    bool isMinimal() const override { return true; }

  private:
    const Topology &topo_;
};

} // namespace turnmodel

#endif // TURNMODEL_CORE_ROUTING_NORTH_LAST_HPP
