#include "core/routing.hpp"

namespace turnmodel {

bool
isProfitable(const Topology &topo, NodeId current, Direction dir,
             NodeId dest)
{
    const auto next = topo.neighbor(current, dir);
    if (!next)
        return false;
    return topo.distance(*next, dest) < topo.distance(current, dest);
}

DirectionSet
minimalDirectionSet(const Topology &topo, NodeId current, NodeId dest)
{
    DirectionSet dirs;
    const int num_dirs = topo.numDirs();
    for (DirId id = 0; id < num_dirs; ++id) {
        const Direction d = Direction::fromId(id);
        if (isProfitable(topo, current, d, dest))
            dirs.insert(d);
    }
    return dirs;
}

std::vector<Direction>
minimalDirections(const Topology &topo, NodeId current, NodeId dest)
{
    return minimalDirectionSet(topo, current, dest).toVector();
}

} // namespace turnmodel
