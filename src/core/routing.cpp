#include "core/routing.hpp"

namespace turnmodel {

bool
isProfitable(const Topology &topo, NodeId current, Direction dir,
             NodeId dest)
{
    const auto next = topo.neighbor(current, dir);
    if (!next)
        return false;
    return topo.distance(*next, dest) < topo.distance(current, dest);
}

std::vector<Direction>
minimalDirections(const Topology &topo, NodeId current, NodeId dest)
{
    std::vector<Direction> dirs;
    for (Direction d : allDirections(topo.numDims())) {
        if (isProfitable(topo, current, d, dest))
            dirs.push_back(d);
    }
    return dirs;
}

} // namespace turnmodel
