#include "core/channel_dependency.hpp"

#include <algorithm>
#include <deque>

#include "core/routing/compiled.hpp"
#include "util/logging.hpp"

namespace turnmodel {

ChannelDependencyGraph::ChannelDependencyGraph(
        const RoutingAlgorithm &routing)
    : space_(routing.topology())
{
    succ_.assign(space_.idBound(), {});
    // The builder queries every (node, in_dir, dest) state — exactly
    // the domain a compiled table covers — so snapshot the routing
    // once unless the caller already handed us a table.
    const auto *table =
        dynamic_cast<const CompiledRoutingTable *>(&routing);
    std::optional<CompiledRoutingTable> local;
    if (!table) {
        local.emplace(routing);
        table = &*local;
    }
    for (NodeId dest = 0; dest < routing.topology().numNodes(); ++dest)
        addEdgesForDestination(*table, dest);
    // Deduplicate adjacency lists (edges repeat across destinations).
    for (auto &list : succ_) {
        std::sort(list.begin(), list.end());
        list.erase(std::unique(list.begin(), list.end()), list.end());
    }
}

void
ChannelDependencyGraph::addEdgesForDestination(
        const RoutingAlgorithm &routing, NodeId dest)
{
    const Topology &topo = routing.topology();
    // Forward exploration of channel states a packet destined to
    // `dest` can occupy, seeded by every possible injection.
    std::vector<bool> visited(space_.idBound(), false);
    std::deque<ChannelId> queue;

    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        if (src == dest)
            continue;
        for (Direction d : routing.routeSet(src, std::nullopt, dest)) {
            const ChannelId ch = space_.id(src, d);
            TM_ASSERT(space_.exists(ch),
                      "routing offered a nonexistent hop ",
                      space_.toString(ch));
            if (!visited[ch]) {
                visited[ch] = true;
                queue.push_back(ch);
            }
        }
    }

    while (!queue.empty()) {
        const ChannelId ch = queue.front();
        queue.pop_front();
        const NodeId at = space_.destination(ch);
        if (at == dest)
            continue;
        const Direction in_dir = space_.direction(ch);
        for (Direction d : routing.routeSet(at, in_dir, dest)) {
            const ChannelId next = space_.id(at, d);
            TM_ASSERT(space_.exists(next),
                      "routing offered a nonexistent hop ",
                      space_.toString(next));
            succ_[ch].push_back(next);
            if (!visited[next]) {
                visited[next] = true;
                queue.push_back(next);
            }
        }
    }
}

std::size_t
ChannelDependencyGraph::numEdges() const
{
    std::size_t count = 0;
    for (const auto &list : succ_)
        count += list.size();
    return count;
}

const std::vector<ChannelId> &
ChannelDependencyGraph::successors(ChannelId c) const
{
    return succ_[c];
}

bool
ChannelDependencyGraph::isAcyclic() const
{
    return findCycle().empty();
}

std::vector<ChannelId>
ChannelDependencyGraph::findCycle() const
{
    // Iterative DFS with colors; on finding a back edge, reconstruct
    // the cycle from the stack.
    enum class Color : std::uint8_t { White, Gray, Black };
    std::vector<Color> color(space_.idBound(), Color::White);
    std::vector<ChannelId> stack;
    // Frame: (channel, next successor index to try).
    std::vector<std::pair<ChannelId, std::size_t>> frames;

    for (ChannelId root : space_.channels()) {
        if (color[root] != Color::White)
            continue;
        frames.emplace_back(root, 0);
        color[root] = Color::Gray;
        stack.push_back(root);
        while (!frames.empty()) {
            auto &[ch, idx] = frames.back();
            if (idx < succ_[ch].size()) {
                const ChannelId next = succ_[ch][idx++];
                if (color[next] == Color::White) {
                    color[next] = Color::Gray;
                    stack.push_back(next);
                    frames.emplace_back(next, 0);
                } else if (color[next] == Color::Gray) {
                    // Back edge: the cycle is the stack suffix that
                    // starts at `next`.
                    auto it = std::find(stack.begin(), stack.end(), next);
                    TM_ASSERT(it != stack.end(), "gray node not on stack");
                    return std::vector<ChannelId>(it, stack.end());
                }
            } else {
                color[ch] = Color::Black;
                stack.pop_back();
                frames.pop_back();
            }
        }
    }
    return {};
}

std::vector<std::uint32_t>
ChannelDependencyGraph::topologicalNumbering() const
{
    // Kahn's algorithm over the existing channels; dependencies must
    // strictly *decrease* the assigned number, so number in reverse
    // topological order.
    std::vector<std::uint32_t> indegree(space_.idBound(), 0);
    for (ChannelId ch : space_.channels()) {
        for (ChannelId next : succ_[ch])
            ++indegree[next];
    }
    std::deque<ChannelId> ready;
    for (ChannelId ch : space_.channels()) {
        if (indegree[ch] == 0)
            ready.push_back(ch);
    }
    std::vector<std::uint32_t> number(space_.idBound(), 0);
    std::uint32_t next_number = static_cast<std::uint32_t>(
        space_.count());
    std::size_t assigned = 0;
    while (!ready.empty()) {
        const ChannelId ch = ready.front();
        ready.pop_front();
        number[ch] = next_number--;
        ++assigned;
        for (ChannelId nxt : succ_[ch]) {
            if (--indegree[nxt] == 0)
                ready.push_back(nxt);
        }
    }
    if (assigned != space_.count())
        return {};
    return number;
}

bool
isDeadlockFree(const RoutingAlgorithm &routing)
{
    return ChannelDependencyGraph(routing).isAcyclic();
}

} // namespace turnmodel
