#include "core/cycle_analysis.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace turnmodel {

std::vector<AbstractCycle>
abstractCycles(int num_dims)
{
    std::vector<AbstractCycle> cycles;
    for (int i = 0; i < num_dims; ++i) {
        for (int j = i + 1; j < num_dims; ++j) {
            const Direction east(static_cast<std::uint8_t>(i), true);
            const Direction west(static_cast<std::uint8_t>(i), false);
            const Direction north(static_cast<std::uint8_t>(j), true);
            const Direction south(static_cast<std::uint8_t>(j), false);

            AbstractCycle cw;
            cw.dim_low = i;
            cw.dim_high = j;
            cw.sense = TurnSense::Clockwise;
            cw.turns = {Turn(east, south), Turn(south, west),
                        Turn(west, north), Turn(north, east)};
            cycles.push_back(cw);

            AbstractCycle ccw;
            ccw.dim_low = i;
            ccw.dim_high = j;
            ccw.sense = TurnSense::Counterclockwise;
            ccw.turns = {Turn(east, north), Turn(north, west),
                         Turn(west, south), Turn(south, east)};
            cycles.push_back(ccw);
        }
    }
    return cycles;
}

int
countAbstractCycles(int num_dims)
{
    return num_dims * (num_dims - 1);
}

int
minimumProhibitedTurns(int num_dims)
{
    return num_dims * (num_dims - 1);
}

bool
breaksAllAbstractCycles(const TurnSet &set, int num_dims)
{
    for (const AbstractCycle &cycle : abstractCycles(num_dims)) {
        const bool broken = std::any_of(
            cycle.turns.begin(), cycle.turns.end(),
            [&set](Turn t) { return !set.isAllowed(t); });
        if (!broken)
            return false;
    }
    return true;
}

std::uint64_t
countOneTurnPerCycleSets(int num_dims)
{
    const int cycles = countAbstractCycles(num_dims);
    TM_ASSERT(cycles < 32, "too many abstract cycles to enumerate");
    return std::uint64_t{1} << (2 * cycles);
}

TurnSet
oneTurnPerCycleSet(int num_dims, std::uint64_t index)
{
    TM_ASSERT(index < countOneTurnPerCycleSets(num_dims),
              "candidate index out of range");
    TurnSet set(num_dims);
    set.allowAll90();
    set.allowAllStraight();
    for (const AbstractCycle &cycle : abstractCycles(num_dims)) {
        set.prohibit(cycle.turns[index & 3]);
        index >>= 2;
    }
    return set;
}

std::vector<TurnSet>
allOneTurnPerCycleSets(int num_dims)
{
    const std::uint64_t count = countOneTurnPerCycleSets(num_dims);
    TM_ASSERT(count <= (std::uint64_t{1} << 20),
              "one-turn-per-cycle family too large to materialize");
    std::vector<TurnSet> sets;
    sets.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i)
        sets.push_back(oneTurnPerCycleSet(num_dims, i));
    return sets;
}

std::uint64_t
countMinimalProhibitionSubsets(int num_dims)
{
    const int total = count90DegreeTurns(num_dims);
    const int choose = minimumProhibitedTurns(num_dims);
    // C(total, choose) without overflow for the sizes we enumerate.
    long double result = 1.0L;
    for (int i = 1; i <= choose; ++i) {
        result *= static_cast<long double>(total - choose + i);
        result /= static_cast<long double>(i);
    }
    return static_cast<std::uint64_t>(result + 0.5L);
}

void
forEachMinimalProhibitionSubset(
    int num_dims, const std::function<bool(const TurnSet &)> &visit)
{
    TM_ASSERT(countMinimalProhibitionSubsets(num_dims) <=
                  (std::uint64_t{1} << 22),
              "minimal-subset space too large to enumerate");
    const std::vector<Turn> turns = all90DegreeTurns(num_dims);
    const int total = static_cast<int>(turns.size());
    const int choose = minimumProhibitedTurns(num_dims);

    // Classic lexicographic k-subset walk over turn indices.
    std::vector<int> pick(static_cast<std::size_t>(choose));
    for (int i = 0; i < choose; ++i)
        pick[static_cast<std::size_t>(i)] = i;
    while (true) {
        TurnSet set(num_dims);
        set.allowAll90();
        set.allowAllStraight();
        for (int i : pick)
            set.prohibit(turns[static_cast<std::size_t>(i)]);
        if (!visit(set))
            return;
        int pos = choose - 1;
        while (pos >= 0 &&
               pick[static_cast<std::size_t>(pos)] ==
                   total - choose + pos) {
            --pos;
        }
        if (pos < 0)
            return;
        ++pick[static_cast<std::size_t>(pos)];
        for (int i = pos + 1; i < choose; ++i) {
            pick[static_cast<std::size_t>(i)] =
                pick[static_cast<std::size_t>(i - 1)] + 1;
        }
    }
}

SquareSymmetry::SquareSymmetry(int index)
    : rotation_(index % 4), reflect_(index >= 4)
{
    TM_ASSERT(index >= 0 && index < groupSize(), "symmetry index 0..7");
}

Direction
SquareSymmetry::apply(Direction d) const
{
    TM_ASSERT(d.dim < 2, "square symmetries act on 2D directions");
    // Represent a direction as one of E=0, N=1, W=2, S=3 and rotate
    // counterclockwise by 90 degrees per rotation step.
    int quadrant;
    if (d.dim == 0)
        quadrant = d.positive ? 0 : 2;
    else
        quadrant = d.positive ? 1 : 3;
    if (reflect_) {
        // Mirror across the x axis: N <-> S.
        quadrant = (4 - quadrant) % 4;
    }
    quadrant = (quadrant + rotation_) % 4;
    switch (quadrant) {
      case 0: return dir2d::East;
      case 1: return dir2d::North;
      case 2: return dir2d::West;
      default: return dir2d::South;
    }
}

Turn
SquareSymmetry::apply(Turn t) const
{
    return Turn(apply(t.from), apply(t.to));
}

TurnSet
SquareSymmetry::apply(const TurnSet &set) const
{
    TM_ASSERT(set.numDims() == 2, "square symmetries act on 2D turn sets");
    TurnSet out(2);
    for (Turn t : all90DegreeTurns(2)) {
        if (set.isAllowed(t))
            out.allow(apply(t));
    }
    for (Direction d : allDirections(2)) {
        if (set.isAllowed(Turn(d, d)))
            out.allow(apply(Turn(d, d)));
        if (set.isAllowed(Turn(d, d.opposite())))
            out.allow(apply(Turn(d, d.opposite())));
    }
    return out;
}

std::vector<std::size_t>
symmetryOrbitRepresentatives(const std::vector<TurnSet> &sets)
{
    std::vector<bool> covered(sets.size(), false);
    std::vector<std::size_t> reps;
    for (std::size_t i = 0; i < sets.size(); ++i) {
        if (covered[i])
            continue;
        reps.push_back(i);
        // Mark every set equivalent to sets[i] under some symmetry.
        for (int s = 0; s < SquareSymmetry::groupSize(); ++s) {
            const TurnSet image = SquareSymmetry(s).apply(sets[i]);
            for (std::size_t j = i; j < sets.size(); ++j) {
                if (!covered[j] && sets[j] == image)
                    covered[j] = true;
            }
        }
    }
    return reps;
}

} // namespace turnmodel
