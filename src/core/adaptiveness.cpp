#include "core/adaptiveness.hpp"

#include <cstdlib>
#include <unordered_map>

#include "core/routing/compiled.hpp"
#include "util/bitops.hpp"
#include "util/logging.hpp"

namespace turnmodel {

std::uint64_t
binomial(int n, int k)
{
    TM_ASSERT(n >= 0 && k >= 0 && k <= n, "binomial domain error");
    k = std::min(k, n - k);
    std::uint64_t result = 1;
    for (int i = 1; i <= k; ++i) {
        // result * (n - k + i) / i is always integral at this point.
        const std::uint64_t numer = static_cast<std::uint64_t>(n - k + i);
        TM_ASSERT(result <= ~0ULL / numer, "binomial overflow");
        result = result * numer / static_cast<std::uint64_t>(i);
    }
    return result;
}

std::uint64_t
factorial(int n)
{
    TM_ASSERT(n >= 0 && n <= 20, "factorial overflow");
    std::uint64_t result = 1;
    for (int i = 2; i <= n; ++i)
        result *= static_cast<std::uint64_t>(i);
    return result;
}

namespace {

/** Per-dimension coordinate offsets dest - src. */
std::vector<int>
deltas(const Topology &mesh, NodeId src, NodeId dest)
{
    const Coords s = mesh.coords(src);
    const Coords d = mesh.coords(dest);
    std::vector<int> out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i)
        out[i] = d[i] - s[i];
    return out;
}

/** Multinomial (sum |delta_i|)! / prod(|delta_i|!). */
std::uint64_t
multinomial(const std::vector<int> &delta)
{
    int total = 0;
    std::uint64_t result = 1;
    for (int d : delta) {
        const int a = std::abs(d);
        total += a;
        result *= binomial(total, a);
    }
    return result;
}

} // namespace

std::uint64_t
fullyAdaptivePathCount(const Topology &mesh, NodeId src, NodeId dest)
{
    return multinomial(deltas(mesh, src, dest));
}

std::uint64_t
westFirstPathCount(const Topology &mesh, NodeId src, NodeId dest)
{
    TM_ASSERT(mesh.numDims() == 2, "west-first S is a 2D formula");
    const auto d = deltas(mesh, src, dest);
    if (d[0] >= 0)
        return multinomial(d);
    return 1;
}

std::uint64_t
northLastPathCount(const Topology &mesh, NodeId src, NodeId dest)
{
    TM_ASSERT(mesh.numDims() == 2, "north-last S is a 2D formula");
    const auto d = deltas(mesh, src, dest);
    if (d[1] <= 0)
        return multinomial(d);
    return 1;
}

std::uint64_t
negativeFirstPathCount(const Topology &mesh, NodeId src, NodeId dest)
{
    const auto delta = deltas(mesh, src, dest);
    // Shortest paths factor into an adaptive phase over the negative
    // moves followed by an adaptive phase over the positive moves.
    std::vector<int> neg, pos;
    for (int d : delta) {
        if (d < 0)
            neg.push_back(d);
        else if (d > 0)
            pos.push_back(d);
    }
    return multinomial(neg) * multinomial(pos);
}

std::uint64_t
pcubePathCount(const Topology &cube, NodeId src, NodeId dest)
{
    const int n = cube.numDims();
    const std::uint64_t s = src;
    const std::uint64_t d = dest;
    const int h1 = popcount(s & complementBits(d, n));
    const int h0 = popcount(complementBits(s, n) & d);
    return factorial(h1) * factorial(h0);
}

std::uint64_t
countAllowedShortestPaths(const RoutingAlgorithm &routing, NodeId src,
                          NodeId dest)
{
    if (src == dest)
        return 1;
    const Topology &topo = routing.topology();
    // Memoized DFS over (node, arrival direction) states; arrival
    // direction matters only for input-dependent algorithms but is
    // cheap to key on regardless.
    std::unordered_map<std::uint64_t, std::uint64_t> memo;
    const auto key = [&topo](NodeId v, std::optional<Direction> in) {
        const std::uint64_t state = in ? 1 + in->id() : 0;
        return static_cast<std::uint64_t>(v)
            * static_cast<std::uint64_t>(topo.numDirs() + 1) + state;
    };

    const auto count = [&](auto &&self, NodeId v,
                           std::optional<Direction> in) -> std::uint64_t {
        if (v == dest)
            return 1;
        const auto it = memo.find(key(v, in));
        if (it != memo.end())
            return it->second;
        std::uint64_t total = 0;
        for (Direction d : routing.routeSet(v, in, dest)) {
            const auto next = topo.neighbor(v, d);
            TM_ASSERT(next, "routing offered a nonexistent hop");
            // Restrict to shortest paths.
            if (topo.distance(*next, dest) >= topo.distance(v, dest))
                continue;
            total += self(self, *next, d);
        }
        memo.emplace(key(v, in), total);
        return total;
    };
    return count(count, src, std::nullopt);
}

AdaptivenessSummary
summarizeAdaptiveness(const RoutingAlgorithm &routing)
{
    const Topology &topo = routing.topology();
    // The closed-form S_f is the orthogonal-mesh multinomial; for
    // topologies whose routing dimensions exceed their coordinate
    // dimensions (hex, octagonal), compute S_f by exhaustive
    // counting instead (see the extension benches).
    TM_ASSERT(topo.numDims() ==
                  static_cast<int>(topo.shape().size()),
              "summarizeAdaptiveness requires an orthogonal mesh; "
              "count S_f exhaustively for other topologies");
    AdaptivenessSummary summary;
    double ratio_sum = 0.0;
    double path_sum = 0.0;
    std::uint64_t singles = 0;
    // The all-pairs sweep queries the full routing domain, so count
    // through a one-off compiled snapshot unless given one already.
    const auto *table =
        dynamic_cast<const CompiledRoutingTable *>(&routing);
    std::optional<CompiledRoutingTable> local;
    if (!table) {
        local.emplace(routing);
        table = &*local;
    }
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            const std::uint64_t sp =
                countAllowedShortestPaths(*table, src, dst);
            const std::uint64_t sf =
                fullyAdaptivePathCount(topo, src, dst);
            ratio_sum += static_cast<double>(sp) / static_cast<double>(sf);
            path_sum += static_cast<double>(sp);
            if (sp == 1)
                ++singles;
            ++summary.pairs;
        }
    }
    if (summary.pairs > 0) {
        summary.mean_ratio = ratio_sum / static_cast<double>(summary.pairs);
        summary.mean_paths = path_sum / static_cast<double>(summary.pairs);
        summary.fraction_single =
            static_cast<double>(singles) /
            static_cast<double>(summary.pairs);
    }
    return summary;
}

} // namespace turnmodel
