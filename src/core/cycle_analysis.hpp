/**
 * @file
 * Abstract-cycle analysis (Steps 2-4 of the turn model). Each plane
 * (i, j) of an n-dimensional network contributes two abstract cycles
 * of four 90-degree turns each — the clockwise and counterclockwise
 * cycles of Figure 2 — for n(n-1) cycles in total. Breaking one turn
 * per abstract cycle is necessary for deadlock freedom (Theorem 1)
 * but not sufficient (Figure 4); sufficiency is established by the
 * channel-dependency-graph check in channel_dependency.hpp.
 */

#ifndef TURNMODEL_CORE_CYCLE_ANALYSIS_HPP
#define TURNMODEL_CORE_CYCLE_ANALYSIS_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/turn_set.hpp"

namespace turnmodel {

/** One of the two four-turn cycles of a plane. */
struct AbstractCycle
{
    int dim_low;        ///< Lower dimension i of the plane (i, j).
    int dim_high;       ///< Higher dimension j.
    TurnSense sense;    ///< Rotational sense of the cycle.
    std::array<Turn, 4> turns;
};

/** The n(n-1) abstract cycles of an n-dimensional network. */
std::vector<AbstractCycle> abstractCycles(int num_dims);

/** Count of abstract cycles, n(n-1). */
int countAbstractCycles(int num_dims);

/**
 * Theorem 1 lower bound: the minimum number of turns that must be
 * prohibited to prevent deadlock, n(n-1) — one quarter of the
 * 4n(n-1) turns.
 */
int minimumProhibitedTurns(int num_dims);

/**
 * True when @p set prohibits at least one turn of every abstract
 * cycle. Necessary for deadlock freedom; not sufficient (Figure 4).
 */
bool breaksAllAbstractCycles(const TurnSet &set, int num_dims);

// --- Candidate enumeration (synthesis support) ---------------------
//
// The synthesis engine (src/synthesis/) enumerates candidate
// prohibited-turn sets in two ways: every minimal-size subset of the
// 90-degree turns (pruned by breaksAllAbstractCycles afterwards), or
// directly the pruned family of one-prohibition-per-abstract-cycle
// sets. The latter is indexable, so huge spaces (4^12 for four
// dimensions) can be sampled without materialization.

/**
 * Number of turn sets that prohibit exactly one turn of each
 * abstract cycle: 4^(n(n-1)). 16 for n = 2 (the paper's Section 3
 * enumeration), 4096 for n = 3.
 */
std::uint64_t countOneTurnPerCycleSets(int num_dims);

/**
 * The @p index-th set prohibiting one turn per abstract cycle, with
 * every other 90-degree turn and straight travel allowed. Writing
 * @p index in base 4, digit c selects which of cycle c's four turns
 * is prohibited (cycles in abstractCycles order).
 *
 * @param index In [0, countOneTurnPerCycleSets(num_dims)).
 */
TurnSet oneTurnPerCycleSet(int num_dims, std::uint64_t index);

/**
 * Materialize the whole one-turn-per-cycle family; only sensible for
 * small n (panics when the count exceeds 1 << 20).
 */
std::vector<TurnSet> allOneTurnPerCycleSets(int num_dims);

/**
 * Number of turns a minimal-size prohibition chooses, n(n-1), and the
 * size of the space it is chosen from, 4n(n-1): a minimal candidate
 * is any n(n-1)-subset of the 90-degree turns. The one-per-cycle
 * family is exactly the subsets that survive cycle-coverage pruning.
 */
std::uint64_t countMinimalProhibitionSubsets(int num_dims);

/**
 * Visit every minimal-size prohibition subset (all n(n-1)-element
 * subsets of the 4n(n-1) turns) as a TurnSet with straight travel
 * and the remaining 90-degree turns allowed. Stops early when
 * @p visit returns false. Only sensible when
 * countMinimalProhibitionSubsets is small (panics above 1 << 22).
 */
void forEachMinimalProhibitionSubset(
    int num_dims, const std::function<bool(const TurnSet &)> &visit);

/**
 * The symmetry group of the 2D turn diagram: the eight symmetries of
 * the square act on directions (and hence on turns and turn sets).
 * Used to reduce the twelve deadlock-free two-turn prohibitions of a
 * 2D mesh to the paper's three unique algorithms.
 */
class SquareSymmetry
{
  public:
    /** @param index Symmetry index in [0, 8): 4 rotations x optional
     * reflection. */
    explicit SquareSymmetry(int index);

    /** Number of symmetries in the group. */
    static constexpr int groupSize() { return 8; }

    Direction apply(Direction d) const;
    Turn apply(Turn t) const;
    TurnSet apply(const TurnSet &set) const;

  private:
    int rotation_;   ///< Quarter turns, 0..3.
    bool reflect_;   ///< Mirror across the x axis first.
};

/**
 * Partition a family of 2D turn sets into orbits under the square's
 * symmetry group; returns one representative index per orbit.
 */
std::vector<std::size_t>
symmetryOrbitRepresentatives(const std::vector<TurnSet> &sets);

} // namespace turnmodel

#endif // TURNMODEL_CORE_CYCLE_ANALYSIS_HPP
