/**
 * @file
 * Abstract-cycle analysis (Steps 2-4 of the turn model). Each plane
 * (i, j) of an n-dimensional network contributes two abstract cycles
 * of four 90-degree turns each — the clockwise and counterclockwise
 * cycles of Figure 2 — for n(n-1) cycles in total. Breaking one turn
 * per abstract cycle is necessary for deadlock freedom (Theorem 1)
 * but not sufficient (Figure 4); sufficiency is established by the
 * channel-dependency-graph check in channel_dependency.hpp.
 */

#ifndef TURNMODEL_CORE_CYCLE_ANALYSIS_HPP
#define TURNMODEL_CORE_CYCLE_ANALYSIS_HPP

#include <array>
#include <vector>

#include "core/turn_set.hpp"

namespace turnmodel {

/** One of the two four-turn cycles of a plane. */
struct AbstractCycle
{
    int dim_low;        ///< Lower dimension i of the plane (i, j).
    int dim_high;       ///< Higher dimension j.
    TurnSense sense;    ///< Rotational sense of the cycle.
    std::array<Turn, 4> turns;
};

/** The n(n-1) abstract cycles of an n-dimensional network. */
std::vector<AbstractCycle> abstractCycles(int num_dims);

/** Count of abstract cycles, n(n-1). */
int countAbstractCycles(int num_dims);

/**
 * Theorem 1 lower bound: the minimum number of turns that must be
 * prohibited to prevent deadlock, n(n-1) — one quarter of the
 * 4n(n-1) turns.
 */
int minimumProhibitedTurns(int num_dims);

/**
 * True when @p set prohibits at least one turn of every abstract
 * cycle. Necessary for deadlock freedom; not sufficient (Figure 4).
 */
bool breaksAllAbstractCycles(const TurnSet &set, int num_dims);

/**
 * The symmetry group of the 2D turn diagram: the eight symmetries of
 * the square act on directions (and hence on turns and turn sets).
 * Used to reduce the twelve deadlock-free two-turn prohibitions of a
 * 2D mesh to the paper's three unique algorithms.
 */
class SquareSymmetry
{
  public:
    /** @param index Symmetry index in [0, 8): 4 rotations x optional
     * reflection. */
    explicit SquareSymmetry(int index);

    /** Number of symmetries in the group. */
    static constexpr int groupSize() { return 8; }

    Direction apply(Direction d) const;
    Turn apply(Turn t) const;
    TurnSet apply(const TurnSet &set) const;

  private:
    int rotation_;   ///< Quarter turns, 0..3.
    bool reflect_;   ///< Mirror across the x axis first.
};

/**
 * Partition a family of 2D turn sets into orbits under the square's
 * symmetry group; returns one representative index per orbit.
 */
std::vector<std::size_t>
symmetryOrbitRepresentatives(const std::vector<TurnSet> &sets);

} // namespace turnmodel

#endif // TURNMODEL_CORE_CYCLE_ANALYSIS_HPP
