/**
 * @file
 * Degree-of-adaptiveness metrics (Glass & Ni, Sections 3.4, 4.1 and
 * 5): S_algorithm, the number of shortest paths an algorithm allows
 * between a source and destination, the fully adaptive reference S_f,
 * and the ratio S_p / S_f averaged over all pairs.
 *
 * Two independent computations are provided — the paper's closed
 * forms and an exhaustive dynamic-programming count over the routing
 * function itself — so each can validate the other.
 */

#ifndef TURNMODEL_CORE_ADAPTIVENESS_HPP
#define TURNMODEL_CORE_ADAPTIVENESS_HPP

#include <cstdint>

#include "core/routing.hpp"

namespace turnmodel {

/** Exact binomial coefficient; panics on overflow of 64 bits. */
std::uint64_t binomial(int n, int k);

/** Exact factorial; panics on overflow of 64 bits. */
std::uint64_t factorial(int n);

/**
 * Number of shortest paths between two nodes of a mesh for a fully
 * adaptive algorithm: the multinomial coefficient
 * (sum |delta_i|)! / prod |delta_i|!.
 */
std::uint64_t fullyAdaptivePathCount(const Topology &mesh, NodeId src,
                                     NodeId dest);

/**
 * Closed-form S for the paper's three 2D partially adaptive
 * algorithms and the n-D negative-first algorithm.
 * @{
 */
std::uint64_t westFirstPathCount(const Topology &mesh, NodeId src,
                                 NodeId dest);
std::uint64_t northLastPathCount(const Topology &mesh, NodeId src,
                                 NodeId dest);
std::uint64_t negativeFirstPathCount(const Topology &mesh, NodeId src,
                                     NodeId dest);
/** @} */

/**
 * Closed-form S for p-cube routing on a hypercube: h1! * h0! with
 * h1 = |S & ~D| and h0 = |~S & D| (Section 5).
 */
std::uint64_t pcubePathCount(const Topology &cube, NodeId src, NodeId dest);

/**
 * Exhaustive count of the shortest paths a routing algorithm allows
 * from src to dest, by memoized enumeration of the routing function
 * restricted to profitable hops. Works for input-dependent
 * algorithms as well (the memo is keyed on node and arrival
 * direction).
 */
std::uint64_t countAllowedShortestPaths(const RoutingAlgorithm &routing,
                                        NodeId src, NodeId dest);

/** Aggregate adaptiveness of an algorithm over all node pairs. */
struct AdaptivenessSummary
{
    double mean_ratio = 0.0;       ///< Average of S_p / S_f over pairs.
    double fraction_single = 0.0;  ///< Fraction of pairs with S_p == 1.
    double mean_paths = 0.0;       ///< Average S_p.
    std::uint64_t pairs = 0;       ///< Ordered pairs counted.
};

/**
 * Compute the summary by exhaustive counting over every ordered
 * source/destination pair of the topology.
 */
AdaptivenessSummary
summarizeAdaptiveness(const RoutingAlgorithm &routing);

} // namespace turnmodel

#endif // TURNMODEL_CORE_ADAPTIVENESS_HPP
