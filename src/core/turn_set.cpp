#include "core/turn_set.hpp"

#include "util/logging.hpp"

namespace turnmodel {

TurnSet::TurnSet(int num_dims)
    : num_dims_(num_dims)
{
    TM_ASSERT(num_dims >= 1, "turn set needs at least one dimension");
    const int dirs = 2 * num_dims;
    allowed_.assign(static_cast<std::size_t>(dirs * dirs), false);
}

int
TurnSet::turnIndex(Turn t) const
{
    return t.id(num_dims_);
}

void
TurnSet::allow(Turn t)
{
    allowed_[static_cast<std::size_t>(turnIndex(t))] = true;
}

void
TurnSet::prohibit(Turn t)
{
    allowed_[static_cast<std::size_t>(turnIndex(t))] = false;
}

bool
TurnSet::isAllowed(Turn t) const
{
    return allowed_[static_cast<std::size_t>(turnIndex(t))];
}

void
TurnSet::allowAll90()
{
    for (Turn t : all90DegreeTurns(num_dims_))
        allow(t);
}

void
TurnSet::allowAllStraight()
{
    for (Direction d : allDirections(num_dims_))
        allow(Turn(d, d));
}

void
TurnSet::allowAll180()
{
    for (Turn t : all180DegreeTurns(num_dims_))
        allow(t);
}

int
TurnSet::countAllowed90() const
{
    int count = 0;
    for (Turn t : all90DegreeTurns(num_dims_)) {
        if (isAllowed(t))
            ++count;
    }
    return count;
}

int
TurnSet::countProhibited90() const
{
    return count90DegreeTurns(num_dims_) - countAllowed90();
}

std::vector<Turn>
TurnSet::prohibited90() const
{
    std::vector<Turn> out;
    for (Turn t : all90DegreeTurns(num_dims_)) {
        if (!isAllowed(t))
            out.push_back(t);
    }
    return out;
}

std::vector<Turn>
TurnSet::allowed90() const
{
    std::vector<Turn> out;
    for (Turn t : all90DegreeTurns(num_dims_)) {
        if (isAllowed(t))
            out.push_back(t);
    }
    return out;
}

std::string
TurnSet::toString() const
{
    std::string out = "prohibited{";
    bool first = true;
    for (Turn t : prohibited90()) {
        if (!first)
            out += ", ";
        out += t.toString();
        first = false;
    }
    return out + "}";
}

std::string
TurnSet::prohibitedSpec() const
{
    std::string out;
    for (Turn t : prohibited90()) {
        if (!out.empty())
            out += ',';
        out += t.toString();
    }
    return out;
}

std::optional<TurnSet>
TurnSet::fromProhibitedSpec(const std::string &spec, int num_dims)
{
    TurnSet set(num_dims);
    set.allowAll90();
    set.allowAllStraight();
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(begin, end - begin);
        if (item.empty())
            return std::nullopt;
        const auto turn = turnFromString(item, num_dims);
        if (!turn || turn->kind() != TurnKind::Ninety)
            return std::nullopt;
        set.prohibit(*turn);
        begin = end + 1;
    }
    return set;
}

TurnSet
TurnSet::dimensionOrder(int num_dims)
{
    TurnSet set(num_dims);
    for (Turn t : all90DegreeTurns(num_dims)) {
        if (t.from.dim < t.to.dim)
            set.allow(t);
    }
    set.allowAllStraight();
    return set;
}

TurnSet
TurnSet::westFirst()
{
    TurnSet set(2);
    set.allowAll90();
    set.allowAllStraight();
    set.prohibit(Turn(dir2d::North, dir2d::West));
    set.prohibit(Turn(dir2d::South, dir2d::West));
    return set;
}

TurnSet
TurnSet::northLast()
{
    TurnSet set(2);
    set.allowAll90();
    set.allowAllStraight();
    set.prohibit(Turn(dir2d::North, dir2d::West));
    set.prohibit(Turn(dir2d::North, dir2d::East));
    return set;
}

TurnSet
TurnSet::negativeFirst(int num_dims)
{
    TurnSet set(num_dims);
    for (Turn t : all90DegreeTurns(num_dims)) {
        const bool positive_to_negative = t.from.positive && !t.to.positive;
        if (!positive_to_negative)
            set.allow(t);
    }
    set.allowAllStraight();
    return set;
}

TurnSet
TurnSet::allButOneNegativeFirst(int num_dims)
{
    TM_ASSERT(num_dims >= 2, "needs at least two dimensions");
    // Phase one: the negative directions of dimensions 0..n-2.
    const auto in_phase_one = [num_dims](Direction d) {
        return !d.positive && d.dim != num_dims - 1;
    };
    TurnSet set(num_dims);
    for (Turn t : all90DegreeTurns(num_dims)) {
        // Once a packet leaves phase one it may not return.
        if (!(in_phase_one(t.to) && !in_phase_one(t.from)))
            set.allow(t);
    }
    set.allowAllStraight();
    return set;
}

TurnSet
TurnSet::allButOnePositiveLast(int num_dims)
{
    TM_ASSERT(num_dims >= 2, "needs at least two dimensions");
    // Phase two: the positive directions of dimensions 1..n-1.
    const auto in_phase_two = [](Direction d) {
        return d.positive && d.dim != 0;
    };
    TurnSet set(num_dims);
    for (Turn t : all90DegreeTurns(num_dims)) {
        // Once a packet enters phase two it stays there.
        if (!(in_phase_two(t.from) && !in_phase_two(t.to)))
            set.allow(t);
    }
    set.allowAllStraight();
    return set;
}

TurnSet
TurnSet::twoProhibited2D(Turn a, Turn b)
{
    TM_ASSERT(a.kind() == TurnKind::Ninety && b.kind() == TurnKind::Ninety,
              "two-prohibited sets are built from 90-degree turns");
    TurnSet set(2);
    set.allowAll90();
    set.allowAllStraight();
    set.prohibit(a);
    set.prohibit(b);
    return set;
}

} // namespace turnmodel
